#include "predict/viewport_predictor.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/matrix.h"

namespace ps360::predict {

using geometry::EquirectPoint;

ViewportPredictor::ViewportPredictor(ViewportPredictorConfig config)
    : config_(config) {
  PS360_CHECK(config_.history_seconds > 0.0);
  PS360_CHECK(config_.poly_degree >= 1 && config_.poly_degree <= 4);
  PS360_CHECK(config_.lambda >= 0.0);
  PS360_CHECK(config_.max_horizon_s > 0.0);
}

EquirectPoint ViewportPredictor::predict(const trace::HeadTrace& trace, double now_t,
                                         double target_t) const {
  PS360_CHECK(target_t >= now_t);
  const double horizon = std::min(target_t - now_t, config_.max_horizon_s);
  const double t0 = now_t - config_.history_seconds;

  // Collect the window, unwrapping longitude as we go.
  std::vector<double> times, xs_unwrapped, ys;
  double x_acc = 0.0;
  bool first = true;
  double prev_x = 0.0;
  for (const auto& s : trace.samples()) {
    if (s.t < t0 || s.t > now_t) continue;
    if (first) {
      x_acc = s.center.x;
      first = false;
    } else {
      x_acc += geometry::wrap_delta(geometry::Degrees(s.center.x),
                                    geometry::Degrees(prev_x))
                   .value();
    }
    prev_x = s.center.x;
    times.push_back(s.t - now_t);  // in [-W, 0]
    xs_unwrapped.push_back(x_acc);
    ys.push_back(s.center.y);
  }
  if (times.size() < config_.poly_degree + 1) {
    // Not enough history: hold the last known center.
    return trace.center_at(now_t);
  }

  const std::size_t n = times.size();
  const std::size_t p = config_.poly_degree + 1;
  // Centre the time basis at the window midpoint: over a symmetric window t
  // and t^2 are uncorrelated, so the ridge penalty shrinks real curvature
  // instead of tearing collinear coefficients apart (which would wreck the
  // extrapolation).
  double t_mid = 0.0;
  for (double t : times) t_mid += t;
  t_mid /= static_cast<double>(n);
  util::Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    double pow_t = 1.0;
    for (std::size_t j = 0; j < p; ++j) {
      design(i, j) = pow_t;
      pow_t *= times[i] - t_mid;
    }
  }
  const double eval_t = horizon - t_mid;
  // The intercept column is unpenalised (shrinking it toward zero would drag
  // the whole prediction toward the origin); only the trend coefficients get
  // the ridge penalty. The target is centred for numerical conditioning.
  std::vector<double> lambdas(p, config_.lambda);
  lambdas[0] = 0.0;

  auto extrapolate = [&](const std::vector<double>& series) {
    double mean = 0.0;
    for (double v : series) mean += v;
    mean /= static_cast<double>(series.size());
    std::vector<double> centred(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) centred[i] = series[i] - mean;
    const std::vector<double> w = util::ridge_solve(design, centred, lambdas);
    double value = mean;
    double pow_t = 1.0;
    for (std::size_t j = 0; j < p; ++j) {
      value += w[j] * pow_t;
      pow_t *= eval_t;
    }
    return value;
  };

  const double x_pred = extrapolate(xs_unwrapped);
  const double y_pred = std::clamp(extrapolate(ys), 0.0, 180.0);
  return EquirectPoint{geometry::wrap360(geometry::Degrees(x_pred)).value(), y_pred};
}

double ViewportPredictor::recent_switching_speed(const trace::HeadTrace& trace,
                                                 double now_t) const {
  const double t0 = std::max(now_t - config_.history_seconds, 0.0);
  if (now_t <= t0 + 1e-9) return 0.0;
  return trace.switching_speed(t0, now_t);
}

}  // namespace ps360::predict
