// Bandwidth estimation (Section IV-C).
//
// The controller predicts the next segments' throughput as the harmonic
// mean of the last few segments' observed download rates — the harmonic
// mean damps transient spikes that would otherwise cause over-fetching.
#pragma once

#include <cstddef>
#include <deque>

#include "util/units.h"

namespace ps360::predict {

class HarmonicMeanEstimator {
 public:
  // `window` past observations contribute; `initial_rate` is returned
  // until the first observation arrives.
  explicit HarmonicMeanEstimator(std::size_t window = 5,
                                 util::BytesPerSec initial_rate =
                                     util::BytesPerSec(500e3));

  // Record an observed download rate (> 0).
  void observe(util::BytesPerSec rate);

  // Current estimate (bytes/second).
  double estimate() const;

  std::size_t observations() const { return history_.size(); }

 private:
  std::size_t window_;
  double initial_;
  std::deque<double> history_;
};

}  // namespace ps360::predict
