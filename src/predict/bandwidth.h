// Bandwidth estimation (Section IV-C).
//
// The controller predicts the next segments' throughput as the harmonic
// mean of the last few segments' observed download rates — the harmonic
// mean damps transient spikes that would otherwise cause over-fetching.
#pragma once

#include <cstddef>
#include <deque>

namespace ps360::predict {

class HarmonicMeanEstimator {
 public:
  // `window` past observations contribute; `initial_bytes_per_s` is
  // returned until the first observation arrives.
  explicit HarmonicMeanEstimator(std::size_t window = 5,
                                 double initial_bytes_per_s = 500e3);

  // Record an observed download rate (bytes/second, > 0).
  void observe(double bytes_per_s);

  // Current estimate (bytes/second).
  double estimate() const;

  std::size_t observations() const { return history_.size(); }

 private:
  std::size_t window_;
  double initial_;
  std::deque<double> history_;
};

}  // namespace ps360::predict
