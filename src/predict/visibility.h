// Per-tile viewport-visibility probabilities for robust tile allocation.
//
// The ridge predictor (viewport_predictor.h) returns a point estimate of the
// viewing center at playback time; robust allocators (GhoshRobust,
// arXiv:1812.00816 §IV) want the *distribution* of that center so they can
// weight every candidate tile by the probability the viewport actually
// touches it. We model the prediction error as an independent Gaussian in
// longitude and colatitude whose spread grows with switching speed times
// lookahead horizon — the empirical shape of head-motion prediction error —
// and integrate it in closed form (erf) over each tile's FoV-dilated extent.
// Deterministic: a pure function of its arguments, no sampling.
#pragma once

#include <vector>

#include "geometry/tile_grid.h"
#include "util/units.h"

namespace ps360::predict {

struct VisibilityConfig {
  // Prediction-error spread: sigma = base + factor * speed * horizon,
  // clamped to max (degrees; raw doubles per the units.h member convention).
  double base_sigma_deg = 10.0;
  double speed_sigma_factor = 0.5;  // sigma degrees per (deg/s * s)
  double max_sigma_deg = 90.0;
};

// Probability, per tile of `grid` (row-major), that a viewport with the
// given FoV centered at the (Gaussian-distributed) future viewing center
// overlaps the tile. predicted_center is the point prediction for playback
// time; switching_speed and horizon set the error spread. Each value is in
// [0, 1]; values are NOT normalized across tiles (they are per-tile overlap
// probabilities, not a distribution over tiles).
std::vector<double> tile_visibility(const geometry::TileGrid& grid,
                                    const geometry::EquirectPoint& predicted_center,
                                    util::Degrees fov_h, util::Degrees fov_v,
                                    util::DegPerSec switching_speed,
                                    util::Seconds horizon,
                                    const VisibilityConfig& config = {});

}  // namespace ps360::predict
