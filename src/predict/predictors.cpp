#include "predict/predictors.h"

#include <array>
#include <string>

#include "util/check.h"

namespace ps360::predict {

const std::string& predictor_name(PredictorKind kind) {
  static const std::array<std::string, kPredictorKindCount> names = {
      "hold", "linear", "ridge", "oracle"};
  const auto index = static_cast<std::size_t>(kind);
  PS360_CHECK(index < names.size());
  return names[index];
}

ViewportPredictorConfig make_predictor_config(PredictorKind kind,
                                              ViewportPredictorConfig base) {
  switch (kind) {
    case PredictorKind::kHold:
      // Degree-1 basis with an overwhelming trend penalty: the fit collapses
      // to the window mean, and the prediction holds it. (A true "last
      // sample" hold is handled in predict_with below; this config is what
      // a hold looks like inside the shared machinery.)
      base.poly_degree = 1;
      base.lambda = 1e9;
      return base;
    case PredictorKind::kLinear:
      base.poly_degree = 1;
      base.lambda = 0.0;
      return base;
    case PredictorKind::kRidge:
      return base;
    case PredictorKind::kOracle:
      // The oracle bypasses the regression entirely (see predict_with); the
      // config only matters for recent_switching_speed, so keep the base.
      return base;
  }
  throw std::invalid_argument("unknown predictor kind");
}

geometry::EquirectPoint predict_with(PredictorKind kind, const trace::HeadTrace& trace,
                                     double now_t, double target_t,
                                     ViewportPredictorConfig base) {
  if (kind == PredictorKind::kHold) {
    PS360_CHECK(target_t >= now_t);
    return trace.center_at(now_t);
  }
  if (kind == PredictorKind::kOracle) {
    PS360_CHECK(target_t >= now_t);
    return trace.center_at(target_t);  // ground truth, deliberately acausal
  }
  const ViewportPredictor predictor(make_predictor_config(kind, base));
  return predictor.predict(trace, now_t, target_t);
}

double mean_prediction_error(PredictorKind kind, const trace::HeadTrace& trace,
                             util::Seconds horizon, util::Seconds stride,
                             ViewportPredictorConfig base) {
  const double horizon_s = horizon.value();
  const double stride_s = stride.value();
  PS360_CHECK(horizon_s > 0.0);
  PS360_CHECK(stride_s > 0.0);
  double total = 0.0;
  std::size_t count = 0;
  for (double now = base.history_seconds + 1.0; now + horizon_s < trace.duration();
       now += stride_s) {
    const auto predicted = predict_with(kind, trace, now, now + horizon_s, base);
    total +=
        geometry::angular_distance(predicted, trace.center_at(now + horizon_s))
            .value();
    ++count;
  }
  PS360_CHECK_MSG(count > 0, "trace too short for this horizon");
  return total / static_cast<double>(count);
}

}  // namespace ps360::predict
