#include "predict/bandwidth.h"

#include "util/check.h"

namespace ps360::predict {

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window,
                                             util::BytesPerSec initial_rate)
    : window_(window), initial_(initial_rate.value()) {
  PS360_CHECK(window >= 1);
  PS360_CHECK(initial_ > 0.0);
}

void HarmonicMeanEstimator::observe(util::BytesPerSec rate) {
  const double bytes_per_s = rate.value();
  // A zero (or negative) rate would poison the harmonic mean: 1/rate is
  // infinite or sign-flipped, and the estimate never recovers within the
  // window. Reject loudly instead.
  PS360_CHECK_MSG(bytes_per_s > 0.0,
                  "observed download rate must be > 0 bytes/s");
  history_.push_back(bytes_per_s);
  if (history_.size() > window_) history_.pop_front();
}

double HarmonicMeanEstimator::estimate() const {
  if (history_.empty()) return initial_;
  double reciprocal_sum = 0.0;
  for (double rate : history_) reciprocal_sum += 1.0 / rate;
  return static_cast<double>(history_.size()) / reciprocal_sum;
}

}  // namespace ps360::predict
