// Deterministic fault injection for the download path.
//
// Contract: a FaultSchedule is a pure function of (FaultConfig, session seed).
// Outage windows are generated lazily by a renewal process driven by a single
// ps360::util::Rng stream, and per-attempt faults (request loss, latency
// spikes) are drawn from seeds derived per (segment, attempt) — so the answer
// never depends on the order callers ask, the thread count, or how far the
// outage horizon has been extended. No wall-clock time anywhere: all times
// are simulated seconds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace ps360::trace {

// Knobs for the fault process. Defaults are a moderately hostile LTE link:
// a couple-second outage every two minutes, one request in twenty lost,
// one in ten delayed by a few hundred milliseconds.
struct FaultConfig {
  bool enabled = false;          // master switch; false must be provably inert
  double outage_spacing_s = 120.0;  // mean gap between outages (<= 0: none)
  double outage_mean_s = 2.0;       // mean outage duration (exponential)
  double outage_max_s = 10.0;       // hard cap on a single outage
  double loss_probability = 0.05;   // chance a request vanishes entirely
  double spike_probability = 0.1;   // chance of an added latency spike
  double spike_mean_s = 0.3;        // mean spike duration (exponential)
};

// Per-attempt verdict: the request is either lost outright or delayed by a
// latency spike (possibly zero).
struct AttemptFault {
  bool lost = false;
  double spike_s = 0.0;
};

// Half-open outage interval [begin, end) during which no request can start
// and no bytes flow.
struct OutageWindow {
  double begin = 0.0;
  double end = 0.0;
};

// Seed stream tag for deriving per-session fault seeds from a driver seed:
// derive_seed(driver_seed, kFaultSeedStream, session_index).
inline constexpr std::uint64_t kFaultSeedStream = 0xFA017ULL;

class FaultSchedule {
 public:
  FaultSchedule(const FaultConfig& config, std::uint64_t session_seed);

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  // The outage window covering time t, if any. Extends the lazily generated
  // window list as needed; windows are disjoint and strictly ordered.
  std::optional<OutageWindow> outage_at(double t);

  // Seconds of outage overlapping [t, t + busy): the extra wall time a
  // transfer spanning that span spends paused. busy must be >= 0.
  double outage_overlap(double t, util::Seconds busy);

  // Fault verdict for a given (segment, attempt) pair. Stateless and
  // order-invariant: derived from the session seed alone.
  AttemptFault attempt_fault(std::size_t segment, std::size_t attempt) const;

  // Windows generated so far (grows as outage_at/outage_overlap look ahead).
  const std::vector<OutageWindow>& windows() const { return windows_; }

 private:
  // Extend the window list until the renewal process has passed time t.
  void ensure_horizon(double t);

  FaultConfig config_;
  std::uint64_t session_seed_ = 0;
  std::vector<OutageWindow> windows_;
  double horizon_ = 0.0;
  util::Rng outage_rng_;
};

}  // namespace ps360::trace
