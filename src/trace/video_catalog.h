// The test-video catalog (Table III of the paper) plus the behavioural and
// content parameters that drive the synthetic substrates.
//
// The paper evaluates on 8 videos from the head-movement dataset of Wu et
// al. [8] (48 users, 18 videos). We ship the 8 evaluation videos of Table
// III with their genre-derived parameters, and an extended 18-video catalog
// used where the paper uses the full dataset (the Fig. 4 SI/TI scatter and
// the Fig. 5 switching-speed distribution).
//
// For videos 1-4 users were instructed to focus on the video content; for
// videos 5-8 they were free to explore — `focused` encodes that split and
// the head-trace synthesizer honours it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ps360::trace {

struct VideoInfo {
  int id = 0;                  // 1-based id as in Table III
  std::string name;            // content description
  double duration_s = 0.0;     // video length in seconds
  double fps = 30.0;           // original frame rate
  bool focused = true;         // users instructed to focus (videos 1-4)

  // Content features (ITU-T P.910 spatial/temporal perceptual information),
  // genre-level baselines; per-segment values vary around these.
  double si_base = 50.0;
  double ti_base = 25.0;

  // Head-trace synthesis parameters: how many points of interest the scene
  // has and how fast they move across the sphere (degrees/second).
  std::size_t n_attractors = 1;
  double attractor_speed = 8.0;
};

// The 8 evaluation videos of Table III.
const std::vector<VideoInfo>& test_videos();

// The full 18-video catalog (Table III videos plus 10 additional genres from
// the dataset) used for model training figures (Fig. 4a, Fig. 5).
const std::vector<VideoInfo>& extended_videos();

// Lookup by id in the extended catalog; throws std::invalid_argument if the
// id is unknown.
const VideoInfo& video_by_id(int id);

// Number of users in the dataset (48 in [8]); the paper uses 40 for Ptile
// construction and the remaining 8 for evaluation.
inline constexpr std::size_t kDatasetUsers = 48;
inline constexpr std::size_t kTrainingUsers = 40;

}  // namespace ps360::trace
