// Deterministic fault injection for the download path. See fault_schedule.h
// for the reproducibility contract: everything here is a pure function of
// (FaultConfig, session seed) and simulated time — no wall clocks, no global
// state, no order sensitivity.
#include "trace/fault_schedule.h"

#include <algorithm>

#include "util/check.h"

namespace ps360::trace {

namespace {

// Sub-stream tags under the session seed, so the outage renewal process and
// the per-attempt draws never share a stream.
constexpr std::uint64_t kOutageStream = 0x0A7A6EULL;
constexpr std::uint64_t kAttemptStream = 0xA77E3D7ULL;

}  // namespace

FaultSchedule::FaultSchedule(const FaultConfig& config,
                             std::uint64_t session_seed)
    : config_(config),
      session_seed_(session_seed),
      outage_rng_(util::derive_seed(session_seed, kOutageStream)) {
  PS360_CHECK_MSG(config.outage_mean_s > 0.0, "outage mean must be positive");
  PS360_CHECK_MSG(config.outage_max_s > 0.0, "outage cap must be positive");
  PS360_CHECK_MSG(
      config.loss_probability >= 0.0 && config.loss_probability <= 1.0,
      "loss probability must be in [0, 1]");
  PS360_CHECK_MSG(
      config.spike_probability >= 0.0 && config.spike_probability <= 1.0,
      "spike probability must be in [0, 1]");
  PS360_CHECK_MSG(config.spike_mean_s >= 0.0,
                  "spike mean must be non-negative");
}

void FaultSchedule::ensure_horizon(double t) {
  if (config_.outage_spacing_s <= 0.0) return;
  // Renewal process: exponential gap, exponential-but-capped duration. The
  // single Rng stream advances monotonically with the horizon, so the window
  // list depends only on how far ahead anyone has looked — never on who asked.
  while (horizon_ <= t) {
    const double gap = outage_rng_.exponential(config_.outage_spacing_s);
    const double len = std::min(outage_rng_.exponential(config_.outage_mean_s),
                                config_.outage_max_s);
    const double begin = horizon_ + gap;
    windows_.push_back(OutageWindow{begin, begin + len});
    horizon_ = begin + len;
  }
}

std::optional<OutageWindow> FaultSchedule::outage_at(double t) {
  PS360_CHECK(t >= 0.0);
  if (!config_.enabled || config_.outage_spacing_s <= 0.0) return std::nullopt;
  ensure_horizon(t);
  // Windows are sorted and disjoint; find the first ending after t.
  const auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](double value, const OutageWindow& w) { return value < w.end; });
  if (it != windows_.end() && it->begin <= t && t < it->end) return *it;
  return std::nullopt;
}

double FaultSchedule::outage_overlap(double t, util::Seconds busy) {
  const double busy_s = busy.value();
  PS360_CHECK(t >= 0.0 && busy_s >= 0.0);
  if (!config_.enabled || config_.outage_spacing_s <= 0.0 || busy_s == 0.0)
    return 0.0;
  // Each second of outage inside the busy span pushes the span's end out by
  // one second, which can expose it to further windows — iterate until no
  // new overlap appears. Terminates because windows have positive gaps drawn
  // from an exponential, so overlap per iteration is bounded by span length.
  double overlap = 0.0;
  for (;;) {
    const double end = t + busy_s + overlap;
    ensure_horizon(end);
    double found = 0.0;
    for (const OutageWindow& w : windows_) {
      if (w.begin >= end) break;
      const double lo = std::max(w.begin, t);
      const double hi = std::min(w.end, end);
      if (hi > lo) found += hi - lo;
    }
    if (found <= overlap) return overlap;
    overlap = found;
  }
}

AttemptFault FaultSchedule::attempt_fault(std::size_t segment,
                                          std::size_t attempt) const {
  AttemptFault fault;
  if (!config_.enabled) return fault;
  // Stateless: a fresh Rng per (segment, attempt) keyed off the session seed,
  // so the verdict is identical no matter when or how often it is queried.
  util::Rng rng(util::derive_seed(
      util::derive_seed(session_seed_, kAttemptStream, segment), attempt));
  fault.lost = rng.bernoulli(config_.loss_probability);
  if (!fault.lost && rng.bernoulli(config_.spike_probability))
    fault.spike_s = rng.exponential(config_.spike_mean_s);
  return fault;
}

}  // namespace ps360::trace
