// Table III video catalog (8 test + 10 extended genres). Static data
// built once; lookups are pure, so catalog consumers are trivially
// deterministic.
#include "trace/video_catalog.h"

#include <stdexcept>

#include "util/check.h"

namespace ps360::trace {

namespace {

std::vector<VideoInfo> make_test_videos() {
  // Durations transcribed from Table III (mm:ss). SI/TI baselines and
  // attractor parameters are genre-informed: sports content has higher
  // motion (TI) and one or few fast points of interest; staged performances
  // are spatially rich (SI) but slower.
  return {
      {1, "Basketball Match", 361.0, 30.0, true, 55.0, 17.5, 1, 12.0},
      {2, "Showtime Boxing", 172.0, 30.0, true, 45.0, 15.2, 1, 8.0},
      {3, "Festival Gala", 373.0, 30.0, true, 70.0, 13.0, 1, 5.0},
      {4, "Idol Dancing", 278.0, 30.0, true, 60.0, 12.1, 1, 6.0},
      {5, "Moving Rhinos", 292.0, 30.0, false, 50.0, 19.8, 3, 10.0},
      {6, "Football Match", 164.0, 30.0, false, 65.0, 22.0, 2, 15.0},
      {7, "Tahiti Surf", 205.0, 30.0, false, 40.0, 24.2, 3, 18.0},
      {8, "Freestyle Skiing", 201.0, 30.0, false, 55.0, 28.8, 3, 20.0},
  };
}

std::vector<VideoInfo> make_extended_videos() {
  std::vector<VideoInfo> all = make_test_videos();
  // Ten additional genres covering the SI/TI spread of Fig. 4(a): from
  // near-static scenery (low TI) to frantic action (high TI), and from
  // texture-poor (low SI) to detail-rich (high SI) frames.
  const std::vector<VideoInfo> extra = {
      {9, "Ocean Dive", 242.0, 30.0, false, 30.0, 9.4, 2, 6.0},
      {10, "Rollercoaster", 118.0, 30.0, true, 48.0, 31.0, 1, 25.0},
      {11, "City Walk Tour", 306.0, 30.0, false, 75.0, 16.6, 3, 9.0},
      {12, "Symphony Concert", 412.0, 30.0, true, 66.0, 7.6, 1, 3.0},
      {13, "Desert Safari", 267.0, 30.0, false, 35.0, 13.9, 2, 8.0},
      {14, "Stunt Plane", 143.0, 30.0, true, 25.0, 26.5, 1, 22.0},
      {15, "Art Museum", 329.0, 30.0, false, 80.0, 6.2, 3, 2.0},
      {16, "Street Parade", 254.0, 30.0, false, 72.0, 21.1, 2, 11.0},
      {17, "Mountain Cable Car", 221.0, 30.0, true, 42.0, 10.8, 1, 5.0},
      {18, "Dance Battle", 187.0, 30.0, true, 58.0, 22.9, 1, 14.0},
  };
  all.insert(all.end(), extra.begin(), extra.end());
  return all;
}

}  // namespace

const std::vector<VideoInfo>& test_videos() {
  static const std::vector<VideoInfo> videos = make_test_videos();
  return videos;
}

const std::vector<VideoInfo>& extended_videos() {
  static const std::vector<VideoInfo> videos = make_extended_videos();
  return videos;
}

const VideoInfo& video_by_id(int id) {
  PS360_CHECK_MSG(id >= 1, "video ids are 1-based (Table III)");
  for (const auto& v : extended_videos())
    if (v.id == id) return v;
  throw std::invalid_argument("unknown video id: " + std::to_string(id));
}

}  // namespace ps360::trace
