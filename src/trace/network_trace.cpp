// Piecewise-constant throughput traces, including the paper's two 4G/5G
// profiles. Seeded generation + pure integration queries keep download
// times identical across reruns.
#include "trace/network_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/csv.h"
#include "util/rng.h"

namespace ps360::trace {

NetworkTrace::NetworkTrace(std::vector<ThroughputSample> samples)
    : samples_(std::move(samples)) {
  PS360_CHECK_MSG(!samples_.empty(), "network trace must have samples");
  PS360_CHECK_MSG(samples_.front().t >= 0.0, "trace must start at t >= 0");
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    PS360_CHECK_MSG(samples_[i].mbps > 0.0, "throughput must be positive");
    if (i > 0)
      PS360_CHECK_MSG(samples_[i].t > samples_[i - 1].t,
                      "trace timestamps must be strictly increasing");
  }
  const double last_step =
      samples_.size() >= 2
          ? samples_.back().t - samples_[samples_.size() - 2].t
          : 1.0;
  end_time_ = samples_.back().t + last_step;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double seg_end = i + 1 < samples_.size() ? samples_[i + 1].t : end_time_;
    bytes_per_period_ += samples_[i].mbps * 1e6 / 8.0 * (seg_end - samples_[i].t);
  }
}

double NetworkTrace::wrap_time(double t) const {
  if (t < samples_.front().t) return samples_.front().t;
  const double span = end_time_ - samples_.front().t;
  double w = std::fmod(t - samples_.front().t, span);
  return samples_.front().t + w;
}

std::size_t NetworkTrace::index_at(double wrapped_t) const {
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), wrapped_t,
      [](double value, const ThroughputSample& s) { return value < s.t; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>(it - samples_.begin()) - 1;
}

double NetworkTrace::throughput_at(double t) const {
  return samples_[index_at(wrap_time(t))].mbps;
}

double NetworkTrace::next_rate_change_after(double t) const {
  // Before the trace starts the rate is clamped to the first sample, so the
  // first possible change is that sample's interval end.
  if (t < samples_.front().t) {
    return samples_.size() >= 2 ? samples_[1].t : end_time_;
  }
  const double wt = wrap_time(t);
  const std::size_t idx = index_at(wt);
  // Boundary of the interval containing wt. When t sits on (or within float
  // dust of) that boundary, step one interval further — "strictly after".
  double dt = ((idx + 1 < samples_.size()) ? samples_[idx + 1].t : end_time_) - wt;
  if (dt <= 1e-12) {
    if (idx + 1 < samples_.size()) {
      // Next interval is [samples_[idx+1].t, following boundary).
      const double after =
          (idx + 2 < samples_.size()) ? samples_[idx + 2].t : end_time_;
      dt += after - samples_[idx + 1].t;
    } else {
      // Wrapping past end_time(): the trace restarts at its first interval.
      dt += (samples_.size() >= 2 ? samples_[1].t : end_time_) - samples_.front().t;
    }
  }
  return t + dt;
}

// Interval of the (wrapped) trace containing time t: sample index plus the
// seconds left in that interval. When wrap_time's fmod rounding lands wt on
// the trace end itself, t is really at the start of a fresh period, so step
// exactly into the first interval at the first sample's rate — never a
// fabricated chunk at the pre-wrap sample's rate (that overcounted integrals
// spanning the boundary and could degenerate into 1e-6-second crawling).
NetworkTrace::WrapStep NetworkTrace::step_at(double t) const {
  const double wt = wrap_time(t);
  const std::size_t idx = index_at(wt);
  const double seg_end =
      (idx + 1 < samples_.size()) ? samples_[idx + 1].t : end_time_;
  const double chunk = seg_end - wt;
  if (chunk > 0.0) return WrapStep{idx, chunk};
  const double first_end = samples_.size() >= 2 ? samples_[1].t : end_time_;
  return WrapStep{0, first_end - samples_.front().t};
}

double NetworkTrace::bytes_in(double t0, double t1) const {
  PS360_CHECK(t1 >= t0);
  // Integrate piecewise-constant Mbps over wall time; step through samples,
  // wrapping at the trace end. Mbps -> bytes/s is * 1e6 / 8.
  double bytes = 0.0;
  double t = t0;
  // Whole periods contribute a phase-independent constant; fast-forward them
  // (the clamped region before the first sample is not periodic, so only
  // once t is inside the trace).
  const double span = period_s();
  if (t >= samples_.front().t && t1 - t >= span) {
    const double periods = std::floor((t1 - t) / span);
    bytes += periods * bytes_per_period_;
    t += periods * span;
  }
  while (t < t1 - 1e-12) {
    const WrapStep step = step_at(t);
    const double chunk = std::min(step.chunk_s, t1 - t);
    bytes += samples_[step.index].mbps * 1e6 / 8.0 * chunk;
    t += chunk;
  }
  return bytes;
}

double NetworkTrace::time_to_download(double bytes, double t0) const {
  PS360_CHECK(bytes >= 0.0);
  if (bytes == 0.0) return 0.0;
  double remaining = bytes;
  double t = t0;
  // Fast-forward whole trace periods: a multi-gigabyte request on a short
  // trace would otherwise grind through every sample of every wrap.
  if (t >= samples_.front().t && remaining > bytes_per_period_) {
    const double periods = std::floor(remaining / bytes_per_period_);
    remaining = std::max(remaining - periods * bytes_per_period_, 0.0);
    t += periods * period_s();
  }
  for (;;) {
    const WrapStep step = step_at(t);
    const double rate_bytes_s = samples_[step.index].mbps * 1e6 / 8.0;
    const double deliverable = rate_bytes_s * step.chunk_s;
    if (deliverable >= remaining) return (t - t0) + remaining / rate_bytes_s;
    remaining -= deliverable;
    t += step.chunk_s;
  }
}

double NetworkTrace::mean_mbps(double t0, double t1) const {
  PS360_CHECK(t1 > t0);
  return bytes_in(t0, t1) * 8.0 / 1e6 / (t1 - t0);
}

std::vector<double> NetworkTrace::rates_mbps() const {
  std::vector<double> rates;
  rates.reserve(samples_.size());
  for (const auto& s : samples_) rates.push_back(s.mbps);
  return rates;
}

NetworkTrace NetworkTrace::scaled(double factor) const {
  PS360_CHECK(factor > 0.0);
  std::vector<ThroughputSample> scaled_samples = samples_;
  for (auto& s : scaled_samples) s.mbps *= factor;
  return NetworkTrace(std::move(scaled_samples));
}

NetworkTrace synthesize_network_trace(const NetworkSynthConfig& config) {
  PS360_CHECK(config.duration_s > 0.0 && config.step_s > 0.0);
  PS360_CHECK(config.min_mbps > 0.0 && config.min_mbps < config.max_mbps);
  PS360_CHECK(config.mean_mbps > config.min_mbps && config.mean_mbps < config.max_mbps);
  util::Rng rng(util::derive_seed(config.seed, 0x4E7770ULL));
  const std::size_t n = static_cast<std::size_t>(std::ceil(config.duration_s / config.step_s));
  std::vector<ThroughputSample> samples;
  samples.reserve(n);
  double rate = config.mean_mbps;
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(ThroughputSample{static_cast<double>(i) * config.step_s, rate});
    const double innovation = rng.normal(0.0, config.volatility);
    rate += config.reversion * (config.mean_mbps - rate) + innovation;
    // Reflect at the bounds rather than clamping, so the walk does not stick
    // to the floor/ceiling (LTE traces show excursions, not saturation).
    if (rate < config.min_mbps) rate = config.min_mbps + (config.min_mbps - rate);
    if (rate > config.max_mbps) rate = config.max_mbps - (rate - config.max_mbps);
    rate = std::clamp(rate, config.min_mbps, config.max_mbps);
  }
  return NetworkTrace(std::move(samples));
}

std::pair<NetworkTrace, NetworkTrace> make_paper_traces(std::uint64_t seed,
                                                        util::Seconds duration) {
  const double duration_s = duration.value();
  NetworkSynthConfig config;
  config.seed = seed;
  config.duration_s = duration_s;
  NetworkTrace trace2 = synthesize_network_trace(config);
  NetworkTrace trace1 = trace2.scaled(2.0);
  return {std::move(trace1), std::move(trace2)};
}

void save_network_trace(const std::filesystem::path& path, const NetworkTrace& trace) {
  util::CsvTable table;
  table.header = {"t", "mbps"};
  for (const auto& s : trace.samples()) table.rows.push_back({s.t, s.mbps});
  util::write_csv_file(path, table);
}

NetworkTrace load_network_trace(const std::filesystem::path& path) {
  // Malformed inputs (ragged rows, non-numeric cells, missing columns, bad
  // sample values) surface as std::runtime_error naming the file, never as
  // an out-of-bounds row access.
  util::CsvTable table;
  std::size_t ct = 0, cm = 0;
  try {
    table = util::read_csv_file(path, /*has_header=*/true);
    ct = table.column("t");
    cm = table.column("mbps");
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("malformed network trace " + path.string() + ": " +
                             e.what());
  }
  if (table.rows.empty())
    throw std::runtime_error("network trace " + path.string() +
                             " has no data rows");
  const std::size_t need = std::max(ct, cm) + 1;
  std::vector<ThroughputSample> samples;
  samples.reserve(table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const auto& row = table.rows[i];
    // Defense in depth: the parser rejects ragged rows against the header,
    // but never index a row narrower than the named columns. Data row i is
    // line i + 2 of the file (after the header), modulo comment lines.
    if (row.size() < need)
      throw std::runtime_error("network trace " + path.string() + " line " +
                               std::to_string(i + 2) + ": row has " +
                               std::to_string(row.size()) +
                               " columns, need at least " + std::to_string(need));
    samples.push_back(ThroughputSample{row[ct], row[cm]});
  }
  try {
    return NetworkTrace(std::move(samples));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("invalid network trace " + path.string() + ": " +
                             e.what());
  }
}

}  // namespace ps360::trace
