// Seeded synthetic head-movement dataset (48 users x 18 videos). Every
// trace derives from util::derive_seed streams only, so the dataset is
// bit-identical across runs, platforms, and thread counts.
#include "trace/dataset.h"

#include "util/check.h"
#include "util/strings.h"

namespace ps360::trace {

std::string dataset_trace_filename(int video_id, int user_id) {
  return util::strfmt("video%d_user%d.csv", video_id, user_id);
}

void export_video_traces(const std::filesystem::path& root,
                         const std::vector<HeadTrace>& traces) {
  PS360_CHECK(!traces.empty());
  std::filesystem::create_directories(root);
  for (const auto& trace : traces) {
    save_head_trace(root / dataset_trace_filename(trace.video_id(), trace.user_id()),
                    trace);
  }
}

std::size_t count_video_users(const std::filesystem::path& root, int video_id) {
  std::size_t count = 0;
  while (std::filesystem::exists(
      root / dataset_trace_filename(video_id, static_cast<int>(count)))) {
    ++count;
  }
  return count;
}

std::vector<HeadTrace> load_video_traces(const std::filesystem::path& root,
                                         int video_id) {
  const std::size_t users = count_video_users(root, video_id);
  PS360_CHECK_MSG(users > 0, "no traces found for this video in the dataset root");
  std::vector<HeadTrace> traces;
  traces.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    traces.push_back(load_head_trace(
        root / dataset_trace_filename(video_id, static_cast<int>(u)), video_id,
        static_cast<int>(u)));
  }
  return traces;
}

}  // namespace ps360::trace
