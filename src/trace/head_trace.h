// Head-movement traces: the (timestamp, viewing-center) series recorded by a
// headset at a fixed sampling rate (50 Hz in the dataset the paper uses).
//
// A HeadTrace is what every downstream consumer sees — the Ptile clusterer,
// the ridge-regression viewport predictor, the switching-speed model (Eq. 5)
// and the streaming simulator. Traces can come from the built-in synthesizer
// (trace/head_synth.h) or be loaded from CSV in the dataset's (t, x, y)
// form, so the real dataset can be swapped in.
#pragma once

#include <filesystem>
#include <vector>

#include "geometry/viewport.h"
#include "util/units.h"

namespace ps360::trace {

struct HeadSample {
  double t = 0.0;  // seconds from video start
  geometry::EquirectPoint center;
};

class HeadTrace {
 public:
  // Samples must be non-empty and strictly increasing in time.
  HeadTrace(int video_id, int user_id, std::vector<HeadSample> samples);

  int video_id() const { return video_id_; }
  int user_id() const { return user_id_; }
  const std::vector<HeadSample>& samples() const { return samples_; }
  double duration() const { return samples_.back().t; }

  // Viewing center at time t (clamped to the trace's time range), linearly
  // interpolated with longitude-wraparound awareness.
  geometry::EquirectPoint center_at(double t) const;

  // The user's viewport at time t with the given FoV.
  geometry::Viewport viewport_at(double t,
                                 util::Degrees fov = util::Degrees(100.0)) const;

  // Mean viewing center over [t0, t1] (wrap-aware circular mean on x).
  geometry::EquirectPoint mean_center(double t0, double t1) const;

  // Eq. 5 view-switching speed (degrees/second) averaged over [t0, t1]:
  // total great-circle path length between consecutive samples divided by
  // the elapsed time.
  double switching_speed(double t0, double t1) const;

  // Instantaneous switching speeds for every consecutive sample pair; used
  // to build the Fig. 5 distribution.
  std::vector<double> switching_speed_series() const;

 private:
  int video_id_;
  int user_id_;
  std::vector<HeadSample> samples_;
};

// CSV persistence. Columns: t,x,y (header included on write).
void save_head_trace(const std::filesystem::path& path, const HeadTrace& trace);
HeadTrace load_head_trace(const std::filesystem::path& path, int video_id, int user_id);

}  // namespace ps360::trace
