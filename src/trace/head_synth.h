// Synthetic head-movement traces.
//
// Substitute for the 48-user dataset of Wu et al. [8] (see DESIGN.md §2).
// The generative model mirrors how the paper describes viewing behaviour:
//
//  * Each video has a small number of moving points of interest
//    ("attractors") whose paths are smooth, deterministic functions of the
//    video id. Sports content has fast attractors, staged performances slow
//    ones (trace::VideoInfo).
//  * Each user pursues one attractor at a time with first-order smooth
//    pursuit plus a personal gaze offset (users of similar interest look at
//    nearby but not identical points — this is what makes viewing centers
//    cluster, the premise of Ptile construction).
//  * Dwell times are exponential; on expiry the user either switches to
//    another attractor or free-explores for a while. Free exploration is
//    rare for videos 1-4 (users were instructed to focus) and common for
//    videos 5-8. Attractor popularity is skewed (most users watch the main
//    action), which is why one or two Ptiles cover most segments (Fig. 7).
//  * Attractor switches and exploration cause fast view switching; sensor
//    jitter adds a high-frequency component. Together these reproduce the
//    Fig. 5 speed distribution (> 10 deg/s for >~30% of samples).
//
// All draws are keyed on (seed, video id, user id), so traces are stable
// across runs and independent across users.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/head_trace.h"
#include "trace/video_catalog.h"

namespace ps360::trace {

struct HeadSynthConfig {
  std::uint64_t seed = 42;
  double sample_rate_hz = 50.0;

  // Smooth-pursuit gain (1/s): how aggressively the gaze closes on the
  // target. Larger -> faster saccades on attractor switches.
  double pursuit_gain = 1.8;

  // Velocity caps (deg/s) for the horizontal/vertical axes; human saccades
  // peak far higher, but headset yaw is what we model.
  double max_speed_x = 120.0;
  double max_speed_y = 60.0;

  // Std-dev of white velocity noise (deg/s) during pursuit.
  double velocity_noise = 2.5;

  // Std-dev of per-sample sensor jitter (degrees).
  double sensor_jitter = 0.07;

  // Personal gaze-offset spread (degrees) for focused / exploratory videos.
  double offset_sigma_focused = 7.0;
  double offset_sigma_free = 9.0;

  // Mean dwell on one target (seconds) before re-deciding.
  double dwell_mean_focused = 18.0;
  double dwell_mean_free = 11.0;

  // Probability that a re-decision starts a free-exploration episode.
  double explore_prob_focused = 0.06;
  double explore_prob_free = 0.20;

  // Mean duration of a free-exploration episode (seconds).
  double explore_mean_s = 3.0;
};

// Deterministic path of one point of interest.
class AttractorPath {
 public:
  // `index` selects the attractor within the video; paths are deterministic
  // functions of (seed, video id, index).
  AttractorPath(const VideoInfo& video, std::size_t index, std::uint64_t seed);

  geometry::EquirectPoint at(double t) const;

  // Popularity weight (skewed toward the first attractor).
  double weight() const { return weight_; }

 private:
  double lon0_, lon_amp_, lon_period_, lon_phase_;
  double y0_, y_amp_, y_period_, y_phase_;
  double drift_;  // slow longitudinal drift, deg/s
  double weight_;
};

class HeadTraceSynthesizer {
 public:
  explicit HeadTraceSynthesizer(HeadSynthConfig config = {});

  const HeadSynthConfig& config() const { return config_; }

  // Attractor paths for a video (shared by all users watching it).
  std::vector<AttractorPath> attractors(const VideoInfo& video) const;

  // One user's head trace over the full video duration.
  HeadTrace synthesize(const VideoInfo& video, int user_id) const;

  // Traces for users [0, n_users).
  std::vector<HeadTrace> synthesize_all(const VideoInfo& video,
                                        std::size_t n_users) const;

 private:
  HeadSynthConfig config_;
};

}  // namespace ps360::trace
