// Synthetic head-trajectory generator (attractor + drift + saccades).
// Pure function of (video params, seed): no global RNG, no wall clock, so
// generated traces are reproducible sample-for-sample.
#include "trace/head_synth.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"
#include "util/rng.h"

namespace ps360::trace {

using geometry::EquirectPoint;

AttractorPath::AttractorPath(const VideoInfo& video, std::size_t index,
                             std::uint64_t seed) {
  PS360_CHECK(index < video.n_attractors);
  util::Rng rng(util::derive_seed(seed, static_cast<std::uint64_t>(video.id) * 131 + 7,
                                  0xA770000ULL + index));
  const double n = static_cast<double>(video.n_attractors);
  // Spread base longitudes around the sphere with jitter so attractors for
  // different videos are decorrelated.
  lon0_ = geometry::wrap360(
              geometry::Degrees(360.0 * (static_cast<double>(index) + 0.5) / n +
                                rng.uniform(-30.0, 30.0)))
              .value();
  lon_period_ = rng.uniform(18.0, 40.0);
  lon_phase_ = rng.uniform(0.0, 2.0 * std::numbers::pi);
  // Sinusoidal oscillation whose *peak* angular speed matches the genre's
  // attractor speed: A * 2*pi / P = speed.
  lon_amp_ = video.attractor_speed * lon_period_ / (2.0 * std::numbers::pi);
  drift_ = rng.uniform(-0.15, 0.15) * video.attractor_speed;

  y0_ = 90.0 + rng.uniform(-12.0, 12.0);
  y_period_ = rng.uniform(22.0, 45.0);
  y_phase_ = rng.uniform(0.0, 2.0 * std::numbers::pi);
  y_amp_ = std::min(20.0, 0.4 * video.attractor_speed * y_period_ /
                              (2.0 * std::numbers::pi));

  // Skewed popularity: the first attractor is the main action.
  static constexpr double kWeights[] = {0.65, 0.25, 0.10, 0.05};
  weight_ = kWeights[std::min<std::size_t>(index, 3)];
}

EquirectPoint AttractorPath::at(double t) const {
  const double lon = lon0_ + drift_ * t +
                     lon_amp_ * std::sin(2.0 * std::numbers::pi * t / lon_period_ +
                                         lon_phase_);
  double y = y0_ + y_amp_ * std::sin(2.0 * std::numbers::pi * t / y_period_ + y_phase_);
  y = std::clamp(y, 15.0, 165.0);
  return EquirectPoint{geometry::wrap360(geometry::Degrees(lon)).value(), y};
}

HeadTraceSynthesizer::HeadTraceSynthesizer(HeadSynthConfig config)
    : config_(config) {
  PS360_CHECK(config_.sample_rate_hz > 0.0);
  PS360_CHECK(config_.pursuit_gain > 0.0);
}

std::vector<AttractorPath> HeadTraceSynthesizer::attractors(const VideoInfo& video) const {
  std::vector<AttractorPath> paths;
  paths.reserve(video.n_attractors);
  for (std::size_t i = 0; i < video.n_attractors; ++i)
    paths.emplace_back(video, i, config_.seed);
  return paths;
}

namespace {

// Pick an attractor index by popularity weight.
std::size_t pick_attractor(const std::vector<AttractorPath>& paths, util::Rng& rng) {
  double total = 0.0;
  for (const auto& p : paths) total += p.weight();
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    u -= paths[i].weight();
    if (u <= 0.0) return i;
  }
  return paths.size() - 1;
}

}  // namespace

HeadTrace HeadTraceSynthesizer::synthesize(const VideoInfo& video, int user_id) const {
  const auto paths = attractors(video);
  util::Rng rng(util::derive_seed(config_.seed,
                                  static_cast<std::uint64_t>(video.id) * 977 + 13,
                                  0x5EEDULL + static_cast<std::uint64_t>(user_id)));

  const double offset_sigma =
      video.focused ? config_.offset_sigma_focused : config_.offset_sigma_free;
  const double dwell_mean =
      video.focused ? config_.dwell_mean_focused : config_.dwell_mean_free;
  const double explore_prob =
      video.focused ? config_.explore_prob_focused : config_.explore_prob_free;

  // Stable personal gaze offset: users in the same cluster look at nearby
  // but distinct points.
  const double offset_x = rng.normal(0.0, offset_sigma);
  const double offset_y = rng.normal(0.0, offset_sigma * 0.7);

  const double dt = 1.0 / config_.sample_rate_hz;
  const std::size_t n_samples =
      static_cast<std::size_t>(std::ceil(video.duration_s * config_.sample_rate_hz)) + 1;

  // Attention state machine.
  bool exploring = false;
  std::size_t target_attractor = pick_attractor(paths, rng);
  EquirectPoint explore_target{0.0, 90.0};
  double next_decision_t = rng.exponential(dwell_mean);

  // Gaze state: start on the initial target.
  EquirectPoint pos = paths[target_attractor].at(0.0);
  pos.x = geometry::wrap360(geometry::Degrees(pos.x + offset_x)).value();
  pos.y = std::clamp(pos.y + offset_y, 0.0, 180.0);

  std::vector<HeadSample> samples;
  samples.reserve(n_samples);

  for (std::size_t i = 0; i < n_samples; ++i) {
    const double t = static_cast<double>(i) * dt;

    if (t >= next_decision_t) {
      if (!exploring && rng.bernoulli(explore_prob)) {
        exploring = true;
        explore_target = EquirectPoint{rng.uniform(0.0, 360.0),
                                       std::clamp(rng.normal(90.0, 25.0), 10.0, 170.0)};
        next_decision_t = t + rng.exponential(config_.explore_mean_s);
      } else {
        exploring = false;
        target_attractor = pick_attractor(paths, rng);
        next_decision_t = t + rng.exponential(dwell_mean);
      }
    }

    EquirectPoint target;
    if (exploring) {
      target = explore_target;
    } else {
      target = paths[target_attractor].at(t);
      target.x = geometry::wrap360(geometry::Degrees(target.x + offset_x)).value();
      target.y = std::clamp(target.y + offset_y, 0.0, 180.0);
    }

    // First-order smooth pursuit with velocity caps and white velocity noise.
    const double err_x = geometry::wrap_delta(geometry::Degrees(target.x),
                                              geometry::Degrees(pos.x))
                             .value();
    const double err_y = target.y - pos.y;
    const double vx = std::clamp(config_.pursuit_gain * err_x, -config_.max_speed_x,
                                 config_.max_speed_x) +
                      rng.normal(0.0, config_.velocity_noise);
    const double vy = std::clamp(config_.pursuit_gain * err_y, -config_.max_speed_y,
                                 config_.max_speed_y) +
                      rng.normal(0.0, config_.velocity_noise);
    pos.x = geometry::wrap360(geometry::Degrees(pos.x + vx * dt)).value();
    pos.y = std::clamp(pos.y + vy * dt, 0.0, 180.0);

    // Recorded sample = true gaze + sensor jitter.
    EquirectPoint recorded{
        geometry::wrap360(
            geometry::Degrees(pos.x + rng.normal(0.0, config_.sensor_jitter)))
            .value(),
        std::clamp(pos.y + rng.normal(0.0, config_.sensor_jitter), 0.0, 180.0)};
    samples.push_back(HeadSample{t, recorded});
  }

  return HeadTrace(video.id, user_id, std::move(samples));
}

std::vector<HeadTrace> HeadTraceSynthesizer::synthesize_all(const VideoInfo& video,
                                                            std::size_t n_users) const {
  std::vector<HeadTrace> traces;
  traces.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    traces.push_back(synthesize(video, static_cast<int>(u)));
  return traces;
}

}  // namespace ps360::trace
