// Network throughput traces.
//
// The paper drives its evaluation with an LTE throughput trace from van der
// Hooft et al. [27], linearly scaled into two conditions: trace 2 averages
// 3.9 Mbps (range 2.3-8.4 Mbps) and trace 1 is twice that. NetworkTrace is a
// piecewise-constant (t, Mbps) series; the synthesizer produces a bounded
// mean-reverting walk with the published statistics, and `scaled()`
// implements the paper's linear scaling.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/units.h"

namespace ps360::trace {

struct ThroughputSample {
  double t = 0.0;     // seconds
  double mbps = 0.0;  // throughput valid on [t, next.t)
};

class NetworkTrace {
 public:
  // Samples must be non-empty, strictly increasing in t, positive in mbps.
  // The last sample is assumed to last as long as the one before it (1 s for
  // a single-sample trace), so the trace covers [first.t, end_time()).
  explicit NetworkTrace(std::vector<ThroughputSample> samples);

  const std::vector<ThroughputSample>& samples() const { return samples_; }
  double end_time() const { return end_time_; }

  // Length of one trace period (end_time() - first sample time) and the
  // bytes one full period delivers. Because the trace is periodic past its
  // end, any window of exactly period_s() seconds delivers bytes_per_period()
  // regardless of phase — which is what lets bytes_in/time_to_download
  // fast-forward whole wraps instead of stepping sample by sample.
  double period_s() const { return end_time_ - samples_.front().t; }
  double bytes_per_period() const { return bytes_per_period_; }

  // Throughput at time t (piecewise-constant; clamps outside the range,
  // and wraps around for t beyond the trace end so long sessions can loop).
  double throughput_at(double t) const;

  // Earliest time strictly after t at which throughput_at may change value
  // (the next sample boundary, wrap-aware). The fleet engine schedules its
  // capacity-change events here so flow rates are constant between events.
  double next_rate_change_after(double t) const;

  // Bytes deliverable in [t0, t1] (integrates the piecewise-constant rate).
  double bytes_in(double t0, double t1) const;

  // Seconds needed to download `bytes` starting at time t0.
  double time_to_download(double bytes, double t0) const;

  // Mean throughput over [t0, t1] in Mbps.
  double mean_mbps(double t0, double t1) const;

  // All sample rates (for summary statistics).
  std::vector<double> rates_mbps() const;

  // Linearly scaled copy (trace 1 of the paper = trace 2 scaled by 2).
  NetworkTrace scaled(double factor) const;

 private:
  // Index of the sample whose interval contains (wrapped) time t.
  std::size_t index_at(double wrapped_t) const;
  double wrap_time(double t) const;
  // Sample index at time t plus the seconds until that interval ends,
  // stepping exactly onto a fresh period at the wrap boundary.
  struct WrapStep {
    std::size_t index = 0;
    double chunk_s = 0.0;
  };
  WrapStep step_at(double t) const;

  std::vector<ThroughputSample> samples_;
  double end_time_ = 0.0;
  double bytes_per_period_ = 0.0;
};

struct NetworkSynthConfig {
  std::uint64_t seed = 7;
  double duration_s = 600.0;
  double step_s = 1.0;       // sample spacing
  double mean_mbps = 3.9;    // long-run mean (trace 2 of the paper)
  double min_mbps = 2.3;     // hard floor
  double max_mbps = 8.4;     // hard ceiling
  double reversion = 0.25;   // mean-reversion strength per step
  double volatility = 0.85;  // per-step innovation std-dev (Mbps)
};

// Bounded mean-reverting walk reproducing the paper's trace-2 statistics.
NetworkTrace synthesize_network_trace(const NetworkSynthConfig& config);

// The two evaluation conditions of Section V: first element is trace 1
// (2x bandwidth), second is trace 2.
std::pair<NetworkTrace, NetworkTrace> make_paper_traces(std::uint64_t seed,
                                                        util::Seconds duration);

// CSV persistence. Columns: t,mbps.
void save_network_trace(const std::filesystem::path& path, const NetworkTrace& trace);
NetworkTrace load_network_trace(const std::filesystem::path& path);

}  // namespace ps360::trace
