// Dataset import/export.
//
// The built-in synthesizer stands in for the head-movement dataset of Wu et
// al. [8]; this module is the seam for swapping the real data in. A dataset
// directory holds one CSV per (video, user):
//
//   <root>/video<id>_user<uid>.csv     with columns t,x,y
//
// plus an optional network trace `network.csv` (columns t,mbps). Exporting
// the synthetic dataset produces exactly this layout, so the round trip is
// the compatibility test for external data.
#pragma once

#include <filesystem>
#include <vector>

#include "trace/head_trace.h"
#include "trace/network_trace.h"
#include "trace/video_catalog.h"

namespace ps360::trace {

// File name for one user's trace of one video.
std::string dataset_trace_filename(int video_id, int user_id);

// Write the traces of one video (users 0..traces.size()) into `root`
// (created if missing). Throws std::runtime_error on I/O failure.
void export_video_traces(const std::filesystem::path& root,
                         const std::vector<HeadTrace>& traces);

// Load all users' traces of one video from `root`. Users are read
// consecutively from id 0 until a file is missing; requires at least one.
std::vector<HeadTrace> load_video_traces(const std::filesystem::path& root,
                                         int video_id);

// Number of consecutive user traces present for a video.
std::size_t count_video_users(const std::filesystem::path& root, int video_id);

}  // namespace ps360::trace
