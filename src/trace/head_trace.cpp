// Head-orientation trace container: causal sampling/interpolation over
// recorded samples. Query results depend only on the stored samples and
// the query time, never on external state.
#include "trace/head_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/csv.h"

namespace ps360::trace {

using geometry::EquirectPoint;

HeadTrace::HeadTrace(int video_id, int user_id, std::vector<HeadSample> samples)
    : video_id_(video_id), user_id_(user_id), samples_(std::move(samples)) {
  PS360_CHECK_MSG(!samples_.empty(), "head trace must have samples");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    PS360_CHECK_MSG(samples_[i].t > samples_[i - 1].t,
                    "head trace timestamps must be strictly increasing");
  }
}

namespace {

// Interpolate between two equirect points, taking the short way around in
// longitude. frac in [0,1].
EquirectPoint lerp_center(const EquirectPoint& a, const EquirectPoint& b, double frac) {
  const double dx =
      geometry::wrap_delta(geometry::Degrees(b.x), geometry::Degrees(a.x)).value();
  const double x = geometry::wrap360(geometry::Degrees(a.x + dx * frac)).value();
  const double y = a.y + (b.y - a.y) * frac;
  return EquirectPoint{x, y};
}

}  // namespace

EquirectPoint HeadTrace::center_at(double t) const {
  if (t <= samples_.front().t) return samples_.front().center;
  if (t >= samples_.back().t) return samples_.back().center;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const HeadSample& s, double value) { return s.t < value; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double frac = (t - lo.t) / (hi.t - lo.t);
  return lerp_center(lo.center, hi.center, frac);
}

geometry::Viewport HeadTrace::viewport_at(double t, util::Degrees fov) const {
  return geometry::Viewport(center_at(t), fov, fov);
}

EquirectPoint HeadTrace::mean_center(double t0, double t1) const {
  PS360_CHECK(t1 >= t0);
  // Circular mean on x via unit-vector averaging; plain mean on y.
  double sx = 0.0, sy = 0.0, y_sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t < t0 || s.t > t1) continue;
    const double rad = geometry::to_radians(geometry::Degrees(s.center.x)).value();
    sx += std::cos(rad);
    sy += std::sin(rad);
    y_sum += s.center.y;
    ++n;
  }
  if (n == 0) return center_at((t0 + t1) / 2.0);
  double x;
  if (sx == 0.0 && sy == 0.0) {
    x = center_at((t0 + t1) / 2.0).x;  // degenerate: antipodal spread
  } else {
    x = geometry::wrap360(geometry::to_degrees(geometry::Radians(std::atan2(sy, sx))))
            .value();
  }
  return EquirectPoint{x, y_sum / static_cast<double>(n)};
}

double HeadTrace::switching_speed(double t0, double t1) const {
  PS360_CHECK(t1 > t0);
  // Great-circle path length over the window / elapsed time (Eq. 5 applied
  // per consecutive sample pair and aggregated).
  double path_deg = 0.0;
  geometry::Vec3 prev = center_at(t0).orientation();
  double prev_t = t0;
  bool any = false;
  for (const auto& s : samples_) {
    if (s.t <= t0 || s.t >= t1) continue;
    const geometry::Vec3 cur = s.center.orientation();
    path_deg += geometry::angular_distance(prev, cur).value();
    prev = cur;
    prev_t = s.t;
    any = true;
  }
  const geometry::Vec3 last = center_at(t1).orientation();
  path_deg += geometry::angular_distance(prev, last).value();
  (void)prev_t;
  (void)any;
  return path_deg / (t1 - t0);
}

std::vector<double> HeadTrace::switching_speed_series() const {
  std::vector<double> speeds;
  if (samples_.size() < 2) return speeds;
  speeds.reserve(samples_.size() - 1);
  geometry::Vec3 prev = samples_.front().center.orientation();
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const geometry::Vec3 cur = samples_[i].center.orientation();
    const double dt = samples_[i].t - samples_[i - 1].t;
    speeds.push_back(
        geometry::switching_speed_deg_per_s(prev, cur, geometry::Seconds(dt)));
    prev = cur;
  }
  return speeds;
}

void save_head_trace(const std::filesystem::path& path, const HeadTrace& trace) {
  util::CsvTable table;
  table.header = {"t", "x", "y"};
  table.rows.reserve(trace.samples().size());
  for (const auto& s : trace.samples())
    table.rows.push_back({s.t, s.center.x, s.center.y});
  util::write_csv_file(path, table);
}

HeadTrace load_head_trace(const std::filesystem::path& path, int video_id, int user_id) {
  const util::CsvTable table = util::read_csv_file(path, /*has_header=*/true);
  const std::size_t ct = table.column("t");
  const std::size_t cx = table.column("x");
  const std::size_t cy = table.column("y");
  std::vector<HeadSample> samples;
  samples.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    samples.push_back(
        HeadSample{row[ct], geometry::EquirectPoint::make(geometry::Degrees(row[cx]),
                                                          geometry::Degrees(row[cy]))});
  }
  return HeadTrace(video_id, user_id, std::move(samples));
}

}  // namespace ps360::trace
