// EdgeCache implementation: preallocated slot pool + open-addressing index
// (linear probing with backward-shift deletion) + intrusive LRU chains.
// Everything is index-based over flat vectors: no per-operation allocation,
// no pointer or hash-container iteration order anywhere near the results.
#include "server/edge_cache.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace ps360::server {

namespace {

// Stateless avalanche of the key into the index table. derive_seed already
// mixes order-sensitively, so (video, segment) swaps land in distant buckets.
std::uint64_t hash_key(const SegmentKey& key) {
  return util::derive_seed(key.plan_word, key.video, key.segment);
}

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

EdgeCache::EdgeCache(EdgeCacheConfig config) : config_(std::move(config)) {
  PS360_CHECK(config_.capacity.value() >= 0.0);
  PS360_CHECK(config_.max_entries >= 1);
  PS360_CHECK(config_.max_entries < kNil);
  track_videos_ = config_.policy == EvictionPolicy::kPopularityWeighted;
  if (track_videos_) {
    PS360_CHECK_MSG(!config_.video_weights.empty(),
                    "kPopularityWeighted needs per-video weights");
  }
  slots_.resize(config_.max_entries);
  free_.reserve(config_.max_entries);
  for (std::size_t i = config_.max_entries; i-- > 0;)
    free_.push_back(static_cast<std::uint32_t>(i));
  // Load factor <= 0.5: the probe sequences stay short and backward-shift
  // deletion cheap even with every slot resident.
  const std::size_t table = next_pow2(std::max<std::size_t>(
      config_.max_entries * 2, 16));
  index_.assign(table, kNil);
  index_mask_ = table - 1;
  if (track_videos_) {
    const std::size_t videos = config_.video_weights.size();
    video_head_.assign(videos, kNil);
    video_tail_.assign(videos, kNil);
    video_count_.assign(videos, 0);
  }
}

std::uint32_t EdgeCache::find_slot(const SegmentKey& key) const {
  std::size_t pos = hash_key(key) & index_mask_;
  while (index_[pos] != kNil) {
    if (slots_[index_[pos]].key == key) return index_[pos];
    pos = (pos + 1) & index_mask_;
  }
  return kNil;
}

void EdgeCache::index_insert(const SegmentKey& key, std::uint32_t slot) {
  std::size_t pos = hash_key(key) & index_mask_;
  while (index_[pos] != kNil) pos = (pos + 1) & index_mask_;
  index_[pos] = slot;
}

void EdgeCache::index_erase(const SegmentKey& key) {
  std::size_t pos = hash_key(key) & index_mask_;
  while (index_[pos] != kNil && !(slots_[index_[pos]].key == key))
    pos = (pos + 1) & index_mask_;
  PS360_ASSERT_MSG(index_[pos] != kNil, "erasing a key that is not indexed");
  // Backward-shift deletion: pull every displaced follower into the hole so
  // probe chains never need tombstones.
  std::size_t hole = pos;
  std::size_t i = pos;
  for (;;) {
    i = (i + 1) & index_mask_;
    if (index_[i] == kNil) break;
    const std::size_t home = hash_key(slots_[index_[i]].key) & index_mask_;
    if (((i - home) & index_mask_) >= ((i - hole) & index_mask_)) {
      index_[hole] = index_[i];
      hole = i;
    }
  }
  index_[hole] = kNil;
}

void EdgeCache::list_unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  else head_ = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  else tail_ = s.prev;
  s.prev = s.next = kNil;
}

void EdgeCache::list_push_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void EdgeCache::video_unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::size_t v = s.key.video;
  if (s.vprev != kNil) slots_[s.vprev].vnext = s.vnext;
  else video_head_[v] = s.vnext;
  if (s.vnext != kNil) slots_[s.vnext].vprev = s.vprev;
  else video_tail_[v] = s.vprev;
  s.vprev = s.vnext = kNil;
}

void EdgeCache::video_push_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::size_t v = s.key.video;
  s.vprev = kNil;
  s.vnext = video_head_[v];
  if (video_head_[v] != kNil) slots_[video_head_[v]].vprev = slot;
  video_head_[v] = slot;
  if (video_tail_[v] == kNil) video_tail_[v] = slot;
}

void EdgeCache::touch(std::uint32_t slot) {
  list_unlink(slot);
  list_push_front(slot);
  if (track_videos_) {
    video_unlink(slot);
    video_push_front(slot);
  }
}

bool EdgeCache::worse_video(std::size_t a, std::size_t b) const {
  const double wa = config_.video_weights[a];
  const double wb = config_.video_weights[b];
  if (wa != wb) return wa < wb;
  return a > b;
}

void EdgeCache::evict_one() {
  std::uint32_t victim = kNil;
  if (track_videos_) {
    PS360_ASSERT(worst_video_ != kNoVideo);
    victim = video_tail_[worst_video_];
  } else {
    victim = tail_;
  }
  PS360_ASSERT_MSG(victim != kNil, "eviction requested from an empty cache");
  Slot& s = slots_[victim];
  index_erase(s.key);
  list_unlink(victim);
  if (track_videos_) {
    const std::size_t v = s.key.video;
    video_unlink(victim);
    if (--video_count_[v] == 0 && v == worst_video_) {
      // The least-popular video just emptied: rescan for the new worst
      // resident. O(catalog) but only on this transition, never per request.
      worst_video_ = kNoVideo;
      for (std::size_t cand = 0; cand < video_count_.size(); ++cand) {
        if (video_count_[cand] == 0) continue;
        if (worst_video_ == kNoVideo || worse_video(cand, worst_video_))
          worst_video_ = cand;
      }
    }
  }
  stats_.resident -= util::Bytes(s.size_bytes);
  --stats_.entries;
  ++stats_.evictions;
  s.size_bytes = 0.0;
  free_.push_back(victim);
}

bool EdgeCache::lookup(const SegmentKey& key) {
  const std::uint32_t slot = find_slot(key);
  if (slot == kNil) {
    ++stats_.misses;
    return false;
  }
  touch(slot);
  ++stats_.hits;
  return true;
}

bool EdgeCache::contains(const SegmentKey& key) const {
  return find_slot(key) != kNil;
}

bool EdgeCache::admit(const SegmentKey& key, util::Bytes size) {
  PS360_CHECK(size.value() > 0.0);
  if (track_videos_)
    PS360_CHECK_MSG(key.video < config_.video_weights.size(),
                    "video id outside the popularity catalog");
  if (size > config_.capacity) {
    ++stats_.bypasses;
    return false;
  }
  const std::uint32_t existing = find_slot(key);
  if (existing != kNil) {
    // Two sessions raced the same origin fetch; the object is already here.
    touch(existing);
    return true;
  }
  while (stats_.resident + size > config_.capacity ||
         stats_.entries >= config_.max_entries) {
    evict_one();
  }
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  Slot& s = slots_[slot];
  s.key = key;
  s.size_bytes = size.value();
  index_insert(key, slot);
  list_push_front(slot);
  if (track_videos_) {
    video_push_front(slot);
    const std::size_t v = key.video;
    if (video_count_[v]++ == 0) {
      if (worst_video_ == kNoVideo || worse_video(v, worst_video_))
        worst_video_ = v;
    }
  }
  stats_.resident += size;
  ++stats_.entries;
  ++stats_.insertions;
  return true;
}

std::size_t EdgeCache::footprint_bytes() const {
  return slots_.capacity() * sizeof(Slot) +
         free_.capacity() * sizeof(std::uint32_t) +
         index_.capacity() * sizeof(std::uint32_t) +
         video_head_.capacity() * sizeof(std::uint32_t) +
         video_tail_.capacity() * sizeof(std::uint32_t) +
         video_count_.capacity() * sizeof(std::size_t) +
         config_.video_weights.capacity() * sizeof(double);
}

}  // namespace ps360::server
