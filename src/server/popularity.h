// Seeded Zipf(α) video-popularity model for the server/CDN layer.
//
// The fleet engine assigns every session a video id at spawn by sampling
// this distribution with an Rng derived from (fleet seed,
// kVideoPopularityStream, session id) — the same derive_seed discipline as
// the start stagger and fault schedules, so the catalog assignment is
// bit-identical across runs, platforms, and PS360_THREADS. Rank r (which is
// also the video id; rank 0 is the most popular title) has static
// probability p(r) ∝ 1 / (r + 1)^α. α = 0 is a uniform catalog; α around
// 0.8–1.2 matches measured VoD popularity skews and is what makes a small
// edge cache absorb most of the request stream.
//
// Sampling is inverse-CDF over a table precomputed in the constructor: no
// allocation, no data-dependent iteration order, one binary search per draw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ps360::server {

// Seed stream tag for per-session video draws (fixed forever; changing it
// would silently re-shuffle every seeded fleet's catalog assignment).
inline constexpr std::uint64_t kVideoPopularityStream = 0x21DFC0DE360ULL;

struct ZipfConfig {
  std::size_t videos = 1;  // catalog size (ids 0 .. videos-1)
  double alpha = 0.8;      // skew exponent; >= 0, 0 = uniform
};

class ZipfPopularity {
 public:
  explicit ZipfPopularity(const ZipfConfig& config);

  std::size_t videos() const { return config_.videos; }
  double alpha() const { return config_.alpha; }

  // Static probability of rank `rank` (== video id); ranks sum to 1.
  double probability(std::size_t rank) const;

  // One inverse-CDF draw: a video id in [0, videos()).
  std::size_t sample(util::Rng& rng) const;

  // The full normalized weight vector, most popular first — the input the
  // popularity-weighted eviction policy keys on.
  const std::vector<double>& weights() const { return prob_; }

 private:
  ZipfConfig config_;
  std::vector<double> prob_;  // prob_[r] = p(rank r)
  std::vector<double> cdf_;   // cdf_[r] = Σ prob_[0..r]; back() == 1.0
};

}  // namespace ps360::server
