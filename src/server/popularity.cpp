// ZipfPopularity implementation: normalized rank table + cumulative sums in
// the constructor, binary-search inverse-CDF per draw.
#include "server/popularity.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ps360::server {

ZipfPopularity::ZipfPopularity(const ZipfConfig& config) : config_(config) {
  PS360_CHECK(config.videos >= 1);
  PS360_CHECK(config.alpha >= 0.0);
  prob_.resize(config.videos);
  cdf_.resize(config.videos);
  double norm = 0.0;
  for (std::size_t r = 0; r < config.videos; ++r) {
    prob_[r] = 1.0 / std::pow(static_cast<double>(r + 1), config.alpha);
    norm += prob_[r];
  }
  double cumulative = 0.0;
  for (std::size_t r = 0; r < config.videos; ++r) {
    prob_[r] /= norm;
    cumulative += prob_[r];
    cdf_[r] = cumulative;
  }
  // Pin the last cumulative to exactly 1 so a uniform draw of 1-ε can never
  // fall off the end of the table.
  cdf_.back() = 1.0;
}

double ZipfPopularity::probability(std::size_t rank) const {
  PS360_CHECK(rank < prob_.size());
  return prob_[rank];
}

std::size_t ZipfPopularity::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace ps360::server
