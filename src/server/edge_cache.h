// Edge cache of encoded Ptile segments for the server/CDN layer.
//
// Keyed by (video id, segment index, plan word) — the plan word packs the
// tile-quality / frame-rate decision the MPC chose, so two sessions share a
// cached object only when they requested the *same encoding* of the same
// segment, exactly like a real CDN keyed on the encoded-representation URL.
// Byte-capacity accounting with two pluggable eviction policies:
//
//   kLru                 — evict the globally least-recently-used object.
//   kPopularityWeighted  — evict the LRU object of the least-popular
//                          resident video (static Zipf weight, ties to the
//                          higher rank), protecting head-of-catalog titles
//                          from one cold tail scan.
//
// Zero hot-path allocation after construction: the slot pool, the
// open-addressing index (linear probing, backward-shift deletion), the free
// list, and the intrusive LRU chains are all sized up front; lookup/admit
// never touch the heap. footprint_bytes() exposes the container footprint so
// a regression test can pin it flat across a workload. Determinism: plain
// vectors and index order only — no unordered containers, no pointers as
// keys, no wall clock — so fleet runs stay bit-identical for any
// PS360_THREADS (one cache per replication slot, same discipline as
// core::PlanCache).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.h"

namespace ps360::server {

enum class EvictionPolicy : std::uint8_t {
  kLru = 0,
  kPopularityWeighted = 1,
};

struct SegmentKey {
  std::uint32_t video = 0;
  std::uint32_t segment = 0;
  std::uint64_t plan_word = 0;  // packed tile-quality/frame-rate plan

  friend constexpr bool operator==(const SegmentKey&,
                                   const SegmentKey&) = default;
};

struct EdgeCacheConfig {
  util::Bytes capacity{0.0};  // total byte budget; objects larger bypass
  EvictionPolicy policy = EvictionPolicy::kLru;
  std::size_t max_entries = 4096;  // slot-pool size, fixed at construction
  // Static per-video popularity weights (ZipfPopularity::weights()), indexed
  // by video id. Required non-empty for kPopularityWeighted; ignored by kLru.
  std::vector<double> video_weights;
};

struct EdgeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t bypasses = 0;  // objects larger than the whole cache
  std::size_t entries = 0;     // resident objects
  util::Bytes resident{0.0};   // resident bytes

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class EdgeCache {
 public:
  explicit EdgeCache(EdgeCacheConfig config);

  // One request: counts a hit (and refreshes recency in every chain the
  // policy keeps) or a miss. The caller fetches from origin on a miss and
  // then offers the object back via admit().
  bool lookup(const SegmentKey& key);

  // Side-effect-free membership probe (tests / diagnostics).
  bool contains(const SegmentKey& key) const;

  // Offer an object after a miss fetch. Evicts per policy until it fits;
  // objects larger than the whole cache are bypassed (never admitted). An
  // already-resident key (two sessions raced the same origin fetch) is
  // refreshed, not duplicated. Returns whether the object is now resident.
  bool admit(const SegmentKey& key, util::Bytes size);

  const EdgeCacheStats& stats() const { return stats_; }
  util::Bytes capacity() const { return config_.capacity; }
  EvictionPolicy policy() const { return config_.policy; }

  // Total heap footprint of every container the cache owns. Constant after
  // construction — the zero-hot-path-allocation regression test pins it.
  std::size_t footprint_bytes() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNoVideo = static_cast<std::size_t>(-1);

  struct Slot {
    SegmentKey key;
    double size_bytes = 0.0;
    std::uint32_t prev = kNil;   // global LRU chain (head = MRU)
    std::uint32_t next = kNil;
    std::uint32_t vprev = kNil;  // per-video LRU chain (popularity policy)
    std::uint32_t vnext = kNil;
  };

  std::uint32_t find_slot(const SegmentKey& key) const;
  void index_insert(const SegmentKey& key, std::uint32_t slot);
  void index_erase(const SegmentKey& key);
  void touch(std::uint32_t slot);
  void list_unlink(std::uint32_t slot);
  void list_push_front(std::uint32_t slot);
  void video_unlink(std::uint32_t slot);
  void video_push_front(std::uint32_t slot);
  // True when resident video `a` is a worse keep than `b`: lower static
  // weight, ties to the higher rank (id).
  bool worse_video(std::size_t a, std::size_t b) const;
  void evict_one();

  EdgeCacheConfig config_;
  EdgeCacheStats stats_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;   // reusable slot ids (stack)
  std::vector<std::uint32_t> index_;  // open-addressing table of slot ids
  std::size_t index_mask_ = 0;
  std::uint32_t head_ = kNil;  // global MRU
  std::uint32_t tail_ = kNil;  // global LRU
  bool track_videos_ = false;  // per-video chains (popularity policy only)
  std::vector<std::uint32_t> video_head_;
  std::vector<std::uint32_t> video_tail_;
  std::vector<std::size_t> video_count_;
  std::size_t worst_video_ = kNoVideo;  // least-popular resident video
};

}  // namespace ps360::server
