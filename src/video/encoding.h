// The encoding-size model: how many bytes a tiled encoding of part of the
// 360° frame costs.
//
// This replaces the paper's FFmpeg/x264 encodes (DESIGN.md §2). The model is
//
//   bytes(region) = [ area · rate(q, SI, TI)                       (content)
//                     + Σ_tiles ovh(q, tile_area) ]               (tiling)
//                   · seconds · frame_ratio^γ · noise
//
// with
//   rate(q, SI, TI)  — full-frame-equivalent Mbps: an exponential CRF ladder
//                      scaled by content complexity (more spatial detail and
//                      motion -> more bits at the same CRF).
//   ovh(q)           — per-tile fragmentation overhead. Encoding a region as
//                      many independently decodable tiles removes the
//                      encoder's ability to exploit redundancy across tile
//                      boundaries, and each tile restarts headers, I-frames
//                      and motion search. We model this as a fixed per-tile
//                      cost per quality level, *calibrated so that the
//                      Fig. 8 medians come out exactly*: a Ptile is
//                      62/57/47/35/27% of the size of the 9 conventional
//                      tiles covering the same area at quality 5/4/3/2/1.
//                      (A per-tile cost that grows with tile area cannot
//                      reproduce the 0.27 ratio at quality 1: with overhead
//                      ∝ area^p the 1-vs-9-tile ratio is bounded below by
//                      9^{p-1}, so p must be ~0 — fixed cost — which is also
//                      why the paper's Ftile baseline must cluster its 450
//                      small blocks into 10 tiles to be viable at all.)
//   frame_ratio^γ    — dropping frames saves bytes sublinearly (γ < 1): the
//                      dropped frames are cheap predicted frames, and wider
//                      temporal gaps make the surviving frames cost more.
//   noise            — per-(segment, region) lognormal variation reproducing
//                      the CDF spread of Fig. 8. Keyed, deterministic.
//
// The model also defines the `b` used by the QoE logistic (Eq. 3):
// fov_bitrate_mbps(q) is the bitrate of a FoV-sized patch at quality q.
// Because CRF fixes per-pixel quantization, perceived quality depends on q
// (not on how many bytes a particular tiling spends), so all schemes share
// this mapping.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "video/content.h"
#include "video/quality.h"

namespace ps360::video {

struct EncodingConfig {
  std::uint64_t seed = 42;

  // Full 360° frame bitrate at quality 5 (CRF 18) for reference content
  // (SI = 50, TI = 25), in Mbps. Chosen so the evaluation's LTE traces
  // (3.9 / 7.8 Mbps average) land where the paper's do: the tile schemes
  // sustain mid-to-high quality on trace 1 and are bandwidth-squeezed on
  // trace 2 (see DESIGN.md §6).
  double full_frame_mbps_best = 14.0;

  // Content scaling: multiplier = intercept + si_slope*SI + ti_slope*TI,
  // equal to 1.0 at the reference content point.
  double content_intercept = 0.45;
  double content_si_slope = 0.0055;
  double content_ti_slope = 0.022;

  // Fig. 8 median Ptile/Ctile size ratios for quality 1..5. These calibrate
  // the per-tile overhead exactly at the paper's 9-tile FoV anchor.
  std::array<double, QualityLadder::kLevels> fov_size_ratio = {0.27, 0.35, 0.47,
                                                               0.57, 0.62};

  // Frame-rate size exponent γ: bytes ∝ (f/fm)^γ.
  double framerate_size_exponent = 0.55;

  // Log-space std-dev of the per-region lognormal size noise.
  double size_noise_sigma_log = 0.10;

  // Geometry anchors: the reference tile is one 4x8-grid tile (45°x45°); the
  // Fig. 8 anchor splits a 3x3-tile Ptile into 9 such tiles.
  double ref_tile_area_fraction = (45.0 * 45.0) / (360.0 * 180.0);
  std::size_t anchor_tile_count = 9;

  // FoV area fraction used to express the QoE bitrate `b` (100°x100° FoV).
  double fov_area_fraction = (100.0 * 100.0) / (360.0 * 180.0);
};

class EncodingModel {
 public:
  explicit EncodingModel(EncodingConfig config = {});

  const EncodingConfig& config() const { return config_; }

  // Full-frame-equivalent rate in Mbps at the given quality for content.
  double area_rate_mbps(int quality, const ContentFeatures& features) const;

  // Fragmentation overhead in Mbps of one independently decodable tile at
  // the given quality (fixed per tile; see file comment).
  double tile_overhead_mbps(int quality, const ContentFeatures& features) const;

  // Bytes for a region of `area_fraction` of the frame encoded as `n_tiles`
  // equal tiles at `quality`, `seconds` long, at a reduced frame-rate ratio
  // (f / fm in (0,1]). `noise_key` selects the deterministic size jitter;
  // pass 0 to disable noise (exact medians — used by calibration tests).
  double region_bytes(double area_fraction, std::size_t n_tiles, int quality,
                      const ContentFeatures& features, double seconds,
                      double frame_rate_ratio = 1.0, std::uint64_t noise_key = 0) const;

  // Bytes for a region made of tiles with the given individual area
  // fractions (for irregular layouts like Ftile).
  double tiled_bytes(const std::vector<double>& tile_area_fractions, int quality,
                     const ContentFeatures& features, double seconds,
                     double frame_rate_ratio = 1.0, std::uint64_t noise_key = 0) const;

  // Mbps of a FoV-sized patch at this quality — both the transfer-size
  // proxy and, scaled by QoModel's bitrate_scale, the `b` fed to Eq. 3
  // (perceived quality follows the encode's actual rate, as in the paper's
  // VMAF-vs-bitrate fit).
  double fov_bitrate_mbps(int quality, const ContentFeatures& features) const;

 private:
  double size_noise(std::uint64_t noise_key) const;

  EncodingConfig config_;
};

}  // namespace ps360::video
