#include "video/encoding.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace ps360::video {

EncodingModel::EncodingModel(EncodingConfig config) : config_(config) {
  PS360_CHECK(config_.full_frame_mbps_best > 0.0);
  PS360_CHECK(config_.framerate_size_exponent > 0.0 &&
              config_.framerate_size_exponent <= 1.0);
  PS360_CHECK(config_.size_noise_sigma_log >= 0.0);
  PS360_CHECK(config_.ref_tile_area_fraction > 0.0 &&
              config_.ref_tile_area_fraction < 1.0);
  PS360_CHECK(config_.anchor_tile_count >= 2);
  for (double ratio : config_.fov_size_ratio) {
    // The 1-vs-n tile ratio achievable with a fixed per-tile cost is bounded
    // below by 1/n; the calibration divides by (n*ratio - 1).
    PS360_CHECK_MSG(ratio > 1.0 / static_cast<double>(config_.anchor_tile_count) &&
                        ratio <= 1.0,
                    "Fig. 8 ratio outside the representable range");
  }
}

double EncodingModel::area_rate_mbps(int quality, const ContentFeatures& features) const {
  const double content = config_.content_intercept +
                         config_.content_si_slope * features.si +
                         config_.content_ti_slope * features.ti;
  PS360_ASSERT_MSG(content > 0.0, "content factor must stay positive");
  return config_.full_frame_mbps_best * QualityLadder::rate_factor(quality) * content;
}

double EncodingModel::tile_overhead_mbps(int quality,
                                         const ContentFeatures& features) const {
  // Calibrated at the Fig. 8 anchor: a region of `anchor_tile_count`
  // reference tiles encoded as one tile (size A*r + K) versus as n tiles
  // (size A*r + n*K) must have the published size ratio:
  //   ratio = (A r + K) / (A r + n K)  =>  K = A r (1 - ratio) / (n ratio - 1).
  const double ratio =
      config_.fov_size_ratio[static_cast<std::size_t>(quality - QualityLadder::kMinLevel)];
  const double n = static_cast<double>(config_.anchor_tile_count);
  const double anchor_area = n * config_.ref_tile_area_fraction;
  const double rate = area_rate_mbps(quality, features);
  return anchor_area * rate * (1.0 - ratio) / (n * ratio - 1.0);
}

double EncodingModel::size_noise(std::uint64_t noise_key) const {
  if (noise_key == 0 || config_.size_noise_sigma_log == 0.0) return 1.0;
  util::Rng rng(util::derive_seed(config_.seed, 0x517EULL, noise_key));
  return rng.lognormal_median(1.0, config_.size_noise_sigma_log);
}

double EncodingModel::region_bytes(double area_fraction, std::size_t n_tiles,
                                   int quality, const ContentFeatures& features,
                                   double seconds, double frame_rate_ratio,
                                   std::uint64_t noise_key) const {
  PS360_CHECK(area_fraction > 0.0 && area_fraction <= 1.0 + 1e-9);
  PS360_CHECK(n_tiles >= 1);
  PS360_CHECK(seconds > 0.0);
  PS360_CHECK(frame_rate_ratio > 0.0 && frame_rate_ratio <= 1.0);
  const double rate = area_rate_mbps(quality, features);
  const double mbps =
      area_fraction * rate +
      static_cast<double>(n_tiles) * tile_overhead_mbps(quality, features);
  const double frame_factor =
      std::pow(frame_rate_ratio, config_.framerate_size_exponent);
  return mbps * 1e6 / 8.0 * seconds * frame_factor * size_noise(noise_key);
}

double EncodingModel::tiled_bytes(const std::vector<double>& tile_area_fractions,
                                  int quality, const ContentFeatures& features,
                                  double seconds, double frame_rate_ratio,
                                  std::uint64_t noise_key) const {
  PS360_CHECK(!tile_area_fractions.empty());
  double area = 0.0;
  for (double a : tile_area_fractions) {
    PS360_CHECK(a > 0.0 && a <= 1.0 + 1e-9);
    area += a;
  }
  return region_bytes(std::min(area, 1.0), tile_area_fractions.size(), quality,
                      features, seconds, frame_rate_ratio, noise_key);
}

double EncodingModel::fov_bitrate_mbps(int quality, const ContentFeatures& features) const {
  return config_.fov_area_fraction * area_rate_mbps(quality, features);
}


}  // namespace ps360::video
