#include "video/content.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"
#include "util/rng.h"

namespace ps360::video {

std::size_t segment_count(const trace::VideoInfo& video, double segment_seconds) {
  PS360_CHECK(segment_seconds > 0.0);
  return static_cast<std::size_t>(std::ceil(video.duration_s / segment_seconds));
}

ContentFeatures segment_features(const trace::VideoInfo& video,
                                 std::size_t segment_index, std::uint64_t seed) {
  // Smooth scene-level drift (long sinusoids with video-specific phase) plus
  // segment-level jitter keyed on (seed, video, segment).
  const double t = static_cast<double>(segment_index);
  const double phase = static_cast<double>(video.id) * 1.37;

  util::Rng jitter(util::derive_seed(seed, static_cast<std::uint64_t>(video.id) * 409,
                                     0xC0FFEEULL + segment_index));

  const double si_wave = 7.0 * std::sin(2.0 * std::numbers::pi * t / 47.0 + phase) +
                         4.0 * std::sin(2.0 * std::numbers::pi * t / 13.0 + 2.0 * phase);
  const double ti_wave = 0.25 * video.ti_base *
                             std::sin(2.0 * std::numbers::pi * t / 23.0 + 3.0 * phase) +
                         0.10 * video.ti_base *
                             std::sin(2.0 * std::numbers::pi * t / 7.0 + phase);

  ContentFeatures f;
  f.si = std::clamp(video.si_base + si_wave + jitter.normal(0.0, 2.0), 10.0, 90.0);
  f.ti = std::clamp(video.ti_base + ti_wave + jitter.normal(0.0, 1.5), 2.0, 80.0);
  return f;
}

ContentFeatures video_features(const trace::VideoInfo& video, double segment_seconds,
                               std::uint64_t seed) {
  const std::size_t n = segment_count(video, segment_seconds);
  PS360_CHECK(n > 0);
  double si_sum = 0.0, ti_sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const ContentFeatures f = segment_features(video, k, seed);
    si_sum += f.si;
    ti_sum += f.ti;
  }
  return ContentFeatures{si_sum / static_cast<double>(n), ti_sum / static_cast<double>(n)};
}

}  // namespace ps360::video
