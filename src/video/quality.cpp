#include "video/quality.h"

#include "util/check.h"

namespace ps360::video {

int QualityLadder::crf(int level) {
  PS360_CHECK(level >= kMinLevel && level <= kMaxLevel);
  return 38 - (level - 1) * 5;
}

double QualityLadder::rate_factor(int level) {
  PS360_CHECK(level >= kMinLevel && level <= kMaxLevel);
  // Relative bitrate at CRF 38/33/28/23/18 versus CRF 18, for 4K 360°
  // content. Roughly "halve per +5 CRF" in the middle of the ladder, with a
  // steeper drop toward the quality floor (x264 spends very few bits once
  // quantization is coarse) — in line with published rate-CRF curves.
  static constexpr double kFactors[kLevels] = {0.018, 0.055, 0.155, 0.40, 1.0};
  return kFactors[static_cast<std::size_t>(level - kMinLevel)];
}

FrameRateLadder::FrameRateLadder(double original_fps) : original_fps_(original_fps) {
  PS360_CHECK(original_fps > 0.0);
}

double FrameRateLadder::fps(std::size_t index) const {
  return original_fps_ * ratio(index);
}

double FrameRateLadder::ratio(std::size_t index) const {
  PS360_CHECK(index >= 1 && index <= kOptions);
  // index kOptions = original; each step below removes 10% of frames.
  const double reduction = 0.1 * static_cast<double>(kOptions - index);
  return 1.0 - reduction;
}

}  // namespace ps360::video
