// Per-segment content features: the spatial (SI) and temporal (TI)
// perceptual information of ITU-T P.910 that the QoE model (Eq. 3) and the
// frame-rate sensitivity parameter α = S_fov / TI (Eq. 4) consume.
//
// In the paper these are computed from the decoded frames; here they are a
// deterministic function of (video id, segment index) varying smoothly
// around the genre baselines of trace::VideoInfo, with hash-keyed jitter so
// no two segments are identical.
#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/video_catalog.h"

namespace ps360::video {

struct ContentFeatures {
  double si = 50.0;  // spatial detail, clamped to [10, 90]
  double ti = 25.0;  // motion intensity, clamped to [2, 80]
};

// Number of L-second segments in a video (the last partial segment is kept).
std::size_t segment_count(const trace::VideoInfo& video, double segment_seconds);

// Content features of one segment. Deterministic; `seed` decorrelates
// different experiment universes.
ContentFeatures segment_features(const trace::VideoInfo& video, std::size_t segment_index,
                                 std::uint64_t seed = 42);

// Video-level mean features (averaged over all segments), used for the
// Fig. 4(a) scatter.
ContentFeatures video_features(const trace::VideoInfo& video, double segment_seconds,
                               std::uint64_t seed = 42);

}  // namespace ps360::video
