// The encoding quality ladder.
//
// The paper encodes every tile at five quality levels obtained by varying
// x264's constant rate factor from 38 down to 18 in steps of 5 (level 1 =
// CRF 38 = worst, level 5 = CRF 18 = best). Rate roughly decays
// exponentially in CRF; we use bits ∝ exp(-kRate * (CRF - 18)) which matches
// the usual "~halving per +5..6 CRF" rule of thumb.
#pragma once

#include <array>
#include <cstddef>

namespace ps360::video {

class QualityLadder {
 public:
  static constexpr int kMinLevel = 1;
  static constexpr int kMaxLevel = 5;
  static constexpr std::size_t kLevels = 5;

  // CRF for a quality level in [1,5]: 38, 33, 28, 23, 18.
  static int crf(int level);

  // Relative rate vs. level 5 (== 1.0), strictly increasing in level.
  static double rate_factor(int level);

  // All levels, ascending.
  static std::array<int, kLevels> levels() { return {1, 2, 3, 4, 5}; }
};

// The frame-rate ladder of the "Ours" scheme: the original rate plus three
// reduced versions (10%, 20%, 30% fewer frames), indexed 1..F with F = the
// original (highest) frame rate, matching the paper's indexing convention.
class FrameRateLadder {
 public:
  explicit FrameRateLadder(double original_fps = 30.0);

  static constexpr std::size_t kOptions = 4;

  double original_fps() const { return original_fps_; }

  // index in [1, kOptions]; kOptions = the original rate, lower indexes are
  // the reduced versions (1 -> 30% reduction).
  double fps(std::size_t index) const;

  // f / f_m in (0, 1].
  double ratio(std::size_t index) const;

 private:
  double original_fps_;
};

}  // namespace ps360::video
