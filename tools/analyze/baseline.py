"""Committed baseline of grandfathered findings.

The baseline is a JSON file of content fingerprints
(`check-id:path:sha1[:12]-of-line:ordinal`). A finding whose fingerprint
appears in the baseline is reported as grandfathered and does not fail the
run; anything new does. `--update-baseline` rewrites the file from the
current findings. The goal is an empty baseline: entries are debts, not
permissions — new code never adds one (use an inline suppression with a
justification instead, which is reviewable at the line it excuses).
"""

from __future__ import annotations

import json
import pathlib

BASELINE_VERSION = 1


def load(path: pathlib.Path) -> set[str]:
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    return set(data.get("findings", []))


def save(path: pathlib.Path, fingerprints: set[str]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(fingerprints),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
