"""Check modules register themselves on import."""

from __future__ import annotations

from . import concurrency  # noqa: F401
from . import contracts  # noqa: F401
from . import determinism  # noqa: F401
from . import hygiene  # noqa: F401
from . import rng  # noqa: F401
from . import suppression  # noqa: F401
from . import units  # noqa: F401
