"""RNG policy: all randomness flows through ps360::util::Rng."""

from __future__ import annotations

import re
from typing import Iterable

from .. import config
from ..context import Finding, RepoContext
from ..registry import Check, register

_BANNED = [
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand("),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::mt19937"), "std::mt19937"),
]


@register
class RngPolicy(Check):
    id = "rng-policy"
    description = (
        "randomness goes through ps360::util::Rng so every run is "
        "bit-reproducible"
    )

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources():
            if sf.rel in config.RNG_EXEMPT:
                continue
            for pattern, label in _BANNED:
                for m in pattern.finditer(sf.stripped):
                    yield self.finding(
                        sf.rel,
                        sf.line_of_offset(m.start()),
                        f"uses {label}; all randomness must go through "
                        "ps360::util::Rng (src/util/rng.h)",
                    )
