"""Concurrency discipline for threaded translation units.

A file is "threaded" when it mentions std::thread / std::jthread (today:
src/fleet/runner.cpp, src/sim/experiment.cpp, and the sharded fleet
engine's solve pool in src/fleet/shard.h/.cpp — the per-shard worker
threads behind DESIGN.md §15). Inside threaded files:

  conc-sync-comment      every std::atomic / std::mutex /
                         std::condition_variable declaration carries a
                         contract comment (same line, or the line directly
                         above) saying what it protects and why the scheme
                         is deterministic
  conc-thread-discipline detached threads and raw `new std::thread` are
                         banned everywhere: every thread joins before the
                         owning scope exits, or results can outlive their
                         slots
"""

from __future__ import annotations

import re
from typing import Iterable

from ..context import Finding, RepoContext, SourceFile
from ..registry import Check, register

_THREADED = re.compile(r"std::j?thread\b")
_SYNC_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(std::atomic(?:<|_)|std::(?:shared_|recursive_)?mutex\b"
    r"|std::condition_variable)"
)


def _threaded_sources(ctx: RepoContext) -> list[SourceFile]:
    return [
        sf for sf in ctx.sources(under=("src",)) if _THREADED.search(sf.stripped)
    ]


def _has_contract_comment(sf: SourceFile, lineno: int) -> bool:
    raw = sf.raw_lines[lineno - 1]
    if "//" in raw:
        return True
    prev = lineno - 2
    while prev >= 0 and not sf.raw_lines[prev].strip():
        prev -= 1
    if prev < 0:
        return False
    stripped_prev = sf.raw_lines[prev].strip()
    return stripped_prev.startswith("//") or stripped_prev.endswith("*/")


@register
class SyncContractComment(Check):
    id = "conc-sync-comment"
    description = (
        "atomics/mutexes in threaded code carry a contract comment "
        "(what they protect, why the scheme stays deterministic)"
    )

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _threaded_sources(ctx):
            for lineno, line in enumerate(sf.stripped_lines, start=1):
                m = _SYNC_DECL.match(line)
                if m and not _has_contract_comment(sf, lineno):
                    yield self.finding(
                        sf.rel,
                        lineno,
                        f"'{m.group(1).rstrip('<_')}' declaration without a "
                        "contract comment; in threaded code every "
                        "synchronization primitive states what it protects "
                        "and why results stay deterministic",
                    )


@register
class ThreadDiscipline(Check):
    id = "conc-thread-discipline"
    description = "no detached threads, no raw `new std::thread`"

    _PATTERNS = [
        (re.compile(r"\.\s*detach\s*\(\s*\)"), "detach()"),
        (re.compile(r"\bnew\s+std::j?thread\b"), "new std::thread"),
    ]

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources():
            for pattern, label in self._PATTERNS:
                for m in pattern.finditer(sf.stripped):
                    yield self.finding(
                        sf.rel,
                        sf.line_of_offset(m.start()),
                        f"uses {label}; threads join before their owning "
                        "scope exits (a detached worker can outlive the "
                        "result slots it writes)",
                    )
