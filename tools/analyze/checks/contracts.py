"""Input validation: every src/ translation unit checks its contracts.

The granularity is per-file: a .cpp under src/ that never invokes
PS360_CHECK / PS360_ASSERT (util/check.h) has public entry points that
accept anything. Files whose entire API is genuinely total (no invalid
inputs exist) carry an inline suppression with that justification.
"""

from __future__ import annotations

from typing import Iterable

from .. import config
from ..context import Finding, RepoContext
from ..registry import Check, register


@register
class ContractChecks(Check):
    id = "contracts"
    description = (
        "every .cpp under src/ validates inputs with PS360_CHECK / "
        "PS360_ASSERT or carries a justified suppression"
    )

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources(under=(config.CONTRACT_DIR,), suffixes=(".cpp",)):
            if "PS360_CHECK" in sf.raw or "PS360_ASSERT" in sf.raw:
                continue
            yield self.finding(
                sf.rel,
                None,
                "no PS360_CHECK/PS360_ASSERT; public API entries under src/ "
                "must validate their inputs (util/check.h)",
            )
