"""Unit-safe public APIs: dimensioned parameters use util:: strong types.

A `double` function parameter whose name carries a unit suffix (`_s`,
`_ms`, `_bps`, `_mbps`, `_j`, `_w`, `_deg`, `_rad`, and compound rates such
as `_bytes_per_s`) is a degree/radian- or seconds/segments-confusion bug
waiting to happen; util/units.h provides zero-overhead Quantity wrappers
for exactly these. The screen targets *parameters* (a `double` introduced
by `(` or `,` in a declarator list) — struct data members and private math
may keep suffixed raw doubles, per the units.h conventions block.
"""

from __future__ import annotations

import re
from typing import Iterable

from .. import config
from ..context import Finding, RepoContext
from ..registry import Check, register

_RAW_UNIT_PARAM = re.compile(
    r"[(,]\s*(?:const\s+)?double\s+(\w*_(?:%s))\b" % "|".join(config.UNIT_SUFFIXES)
)


@register
class UnitsSuffix(Check):
    id = "units-suffix"
    description = (
        "raw double unit-suffixed parameters in src/ public headers must be "
        "util:: strong types (units.h)"
    )

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources(under=(config.UNITS_HEADER_DIR,), suffixes=(".h",)):
            for m in _RAW_UNIT_PARAM.finditer(sf.stripped):
                yield self.finding(
                    sf.rel,
                    sf.line_of_offset(m.start(1)),
                    f"raw 'double {m.group(1)}' parameter in a public header; "
                    "use the util:: strong type for this dimension "
                    "(util/units.h: Seconds, Mbps, BytesPerSec, Joules, "
                    "Watts, Degrees, Radians, DegPerSec)",
                )
