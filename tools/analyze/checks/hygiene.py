"""Source hygiene: include guards and namespace discipline."""

from __future__ import annotations

import re
from typing import Iterable

from ..context import Finding, RepoContext
from ..registry import Check, register

_USING_NAMESPACE_STD = re.compile(r"^\s*using\s+namespace\s+std\s*;")


@register
class PragmaOnce(Check):
    id = "header-pragma-once"
    description = "every header opens its include guard with #pragma once"

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources(suffixes=(".h",)):
            if "#pragma once" not in sf.raw:
                yield self.finding(
                    sf.rel, None, "header is missing '#pragma once'"
                )


@register
class UsingNamespaceStd(Check):
    id = "using-namespace-std"
    description = "'using namespace std;' is banned everywhere"

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in ctx.sources():
            for lineno, line in enumerate(sf.stripped_lines, start=1):
                if _USING_NAMESPACE_STD.search(line):
                    yield self.finding(
                        sf.rel, lineno, "'using namespace std;' is banned"
                    )
