"""Suppression hygiene: the engine-managed meta-check.

Registered like any other check so it gets a stable ID, a ctest entry, and
SARIF rule metadata — but its findings are computed by the engine after
suppression resolution (it needs to know which allow() comments matched a
real finding and which dangled)."""

from __future__ import annotations

from typing import Iterable

from ..context import Finding, RepoContext
from ..registry import Check, register


@register
class SuppressionHygiene(Check):
    id = "suppression-hygiene"
    description = (
        "ps360-lint allow() comments carry a justification, name a real "
        "check, and match an actual finding (unused suppressions are errors)"
    )
    engine_managed = True

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        return ()
