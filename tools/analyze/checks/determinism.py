"""Determinism discipline for replayable subsystems.

src/fleet, src/obs, src/trace, and src/sim must produce bit-identical
output across reruns, schemes, and PS360_THREADS (the fleet differential
tests prove it dynamically; these checks catch the classic ways to break it
at review time):

  det-wall-clock       wall-clock reads make identical runs stamp different
                       artifacts — simulated time only
  det-locale           locale/calendar formatting varies by environment
  det-static-state     mutable static/namespace-scope state leaks across
                       sessions and replications and races under threads
  det-unordered        unordered_{map,set} iteration order is unspecified;
                       anything it feeds (output, accumulation) is
                       nondeterministic across libraries and ASLR runs
  det-address-order    hashing or ordering by pointer value depends on the
                       allocator and ASLR
  det-contract-comment every source opens with a '//' comment stating its
                       contract, so the discipline is visible in-file
"""

from __future__ import annotations

import re
from typing import Iterable

from .. import config
from ..context import Finding, RepoContext, SourceFile
from ..registry import Check, register


def _deterministic_sources(ctx: RepoContext) -> list[SourceFile]:
    return ctx.sources(under=config.DETERMINISTIC_DIRS)


class _PatternCheck(Check):
    patterns: list[tuple[re.Pattern[str], str]] = []
    why = ""

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _deterministic_sources(ctx):
            for pattern, label in self.patterns:
                for m in pattern.finditer(sf.stripped):
                    yield self.finding(
                        sf.rel,
                        sf.line_of_offset(m.start()),
                        f"uses {label} in a deterministic subsystem; {self.why}",
                    )


@register
class WallClock(_PatternCheck):
    id = "det-wall-clock"
    description = "no wall-clock reads in deterministic subsystems"
    patterns = [
        (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
        (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
        (
            re.compile(r"std::chrono::high_resolution_clock"),
            "std::chrono::high_resolution_clock",
        ),
        (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr)"),
        (re.compile(r"\bgettimeofday\s*\("), "gettimeofday("),
        (re.compile(r"\bclock_gettime\s*\("), "clock_gettime("),
    ]
    why = "replayable simulations use simulated time only, never wall-clock time"


@register
class LocaleReads(_PatternCheck):
    id = "det-locale"
    description = "no locale or calendar formatting in deterministic subsystems"
    patterns = [
        (re.compile(r"std::locale"), "std::locale"),
        (re.compile(r"\bsetlocale\s*\("), "setlocale("),
        (re.compile(r"\blocaltime(?:_r)?\s*\("), "localtime("),
        (re.compile(r"\bgmtime(?:_r)?\s*\("), "gmtime("),
        (re.compile(r"\bstrftime\s*\("), "strftime("),
        (re.compile(r"\basctime\s*\("), "asctime("),
    ]
    why = "formatting must not vary with the host environment"


@register
class StaticState(Check):
    id = "det-static-state"
    description = "no mutable static or namespace-scope state in deterministic subsystems"

    # `static <type> name =` / `name;` / `name{...}` where the type is not
    # const/constexpr, plus `inline` namespace-scope variables in headers.
    # Static member *functions* never match: the declarator is followed by
    # '(' which the name-capture refuses.
    _MUTABLE_STATIC = re.compile(
        r"\b(?:static|inline)\s+(?!const\b|constexpr\b|void\b)"
        r"[\w:<>,*&\s]+?\b(\w+)\s*(?:=[^=]|\{|;)"
    )

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _deterministic_sources(ctx):
            for m in self._MUTABLE_STATIC.finditer(sf.stripped):
                yield self.finding(
                    sf.rel,
                    sf.line_of_offset(m.start()),
                    f"mutable static/namespace-scope state '{m.group(1)}' in a "
                    "deterministic subsystem; state must live in the session/"
                    "engine object so replications stay independent and "
                    "thread-safe",
                )


@register
class UnorderedContainers(Check):
    id = "det-unordered"
    description = "no unordered containers in deterministic subsystems"

    _UNORDERED = re.compile(r"std::unordered_(?:multi)?(?:map|set)\b")

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _deterministic_sources(ctx):
            for m in self._UNORDERED.finditer(sf.stripped):
                yield self.finding(
                    sf.rel,
                    sf.line_of_offset(m.start()),
                    "std::unordered_map/set in a deterministic subsystem: "
                    "iteration order is unspecified, so anything it feeds "
                    "(output, accumulation, event emission) loses "
                    "bit-reproducibility; use std::map or a sorted vector, or "
                    "suppress with a justification that iteration never "
                    "escapes",
                )


@register
class AddressOrder(Check):
    id = "det-address-order"
    description = "no hashing/ordering by pointer value in deterministic subsystems"

    _PATTERNS = [
        (re.compile(r"std::hash\s*<[^>]*\*\s*>"), "std::hash of a pointer type"),
        (
            re.compile(r"reinterpret_cast\s*<\s*std::u?intptr_t\s*>"),
            "reinterpret_cast to uintptr_t (pointer-value arithmetic)",
        ),
    ]

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _deterministic_sources(ctx):
            for pattern, label in self._PATTERNS:
                for m in pattern.finditer(sf.stripped):
                    yield self.finding(
                        sf.rel,
                        sf.line_of_offset(m.start()),
                        f"{label}: addresses vary run-to-run under ASLR, so "
                        "any ordering or bucketing derived from them is "
                        "nondeterministic",
                    )


@register
class ContractComment(Check):
    id = "det-contract-comment"
    description = "deterministic sources open with a '//' contract comment"

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        for sf in _deterministic_sources(ctx):
            if not sf.raw.lstrip().startswith("//"):
                yield self.finding(
                    sf.rel,
                    1,
                    "sources in deterministic subsystems must open with a "
                    "'//' header comment stating the file's contract",
                )
