"""Scope configuration for the pstream360 analyzer.

One place to answer "which files does invariant X govern?". Checks import
these rather than hard-coding paths, so widening a discipline (as PR 6 did
for determinism: fleet/obs -> fleet/obs/trace/sim) is a one-line diff here.
"""

from __future__ import annotations

# Directories the analyzer walks, relative to the repo root.
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_SUFFIXES = (".h", ".cpp")

# Paths never scanned: analyzer self-test fixtures deliberately contain one
# violation per check and must not trip the real run.
EXCLUDE_PATHS = ("tests/data",)

# All randomness flows through ps360::util::Rng; only its implementation may
# touch the underlying engines.
RNG_EXEMPT = ("src/util/rng.h", "src/util/rng.cpp")

# Deterministic subsystems: replayable simulations — bit-identical output
# across reruns, schemes, and PS360_THREADS. The fleet engine, the
# observability layer, the trace/fault synthesis layer, the server/CDN tier
# (Zipf catalog + edge cache, one instance per replication slot), and the
# simulation core are all inside the discipline (ROADMAP item 1 puts sharded
# event-loop code here next). src/sim covers the controller registry, the
# competitor schemes (competitors.cpp), and the tournament harness
# (tournament.cpp — compiled into ps360::fleet but living here), whose ranked
# report promises byte-identical JSON for any thread/shard count. Individual
# files join too: the MPC plan cache promises cache-on == cache-off
# bit-identicality, so its internals (no unordered containers, no wall
# clock) are part of the same contract.
DETERMINISTIC_DIRS = ("src/fleet", "src/obs", "src/trace", "src/sim",
                      "src/server",
                      "src/core/plan_cache.h", "src/core/plan_cache.cpp")

# Modules whose public entry points must validate inputs with
# PS360_CHECK / PS360_ASSERT (util/check.h): all of src/.
CONTRACT_DIR = "src"

# Public headers screened for raw-double unit-suffixed parameters: all of
# src/. Quantities crossing these APIs use util:: strong types (units.h).
UNITS_HEADER_DIR = "src"

# Unit-name suffixes that mark a raw double parameter as dimensioned.
# `\w*_s` intentionally also catches compound rates (bytes_per_s,
# deg_per_s): those are dimensioned too.
UNIT_SUFFIXES = ("s", "ms", "bps", "mbps", "j", "w", "deg", "rad")
