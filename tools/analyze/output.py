"""Report renderers: human text, machine JSON, SARIF 2.1.0.

The SARIF output is the CI artifact (uploaded from the release leg) and is
deliberately minimal-but-valid: tool.driver with the full rule table,
results with ruleId/ruleIndex, message, one physical location each, and the
engine's content fingerprint under `fingerprints` so external viewers can
track findings across commits the same way the baseline does.
"""

from __future__ import annotations

import json

from .engine import Report
from .registry import all_checks

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: Report) -> str:
    lines: list[str] = []
    scope = (
        "all checks" if report.selected is None
        else "check(s) " + ", ".join(report.selected)
    )
    if report.findings:
        lines.append(f"ps360-lint: {len(report.findings)} finding(s) [{scope}]")
        for f in report.findings:
            lines.append(f"  {f.location()}: [{f.check_id}] {f.message}")
    else:
        lines.append(f"ps360-lint: clean [{scope}]")
    if report.grandfathered:
        lines.append(
            f"ps360-lint: {len(report.grandfathered)} grandfathered finding(s) "
            "in the baseline (tools/analyze/baseline.json) — burn these down"
        )
    if report.stale_baseline:
        lines.append(
            f"ps360-lint: {len(report.stale_baseline)} stale baseline entr(y/ies) "
            "no longer fire — rerun with --update-baseline to drop them"
        )
    if report.suppressions_honored:
        lines.append(
            f"ps360-lint: {report.suppressions_honored} inline suppression(s) "
            "honored"
        )
    return "\n".join(lines) + "\n"


def render_json(report: Report) -> str:
    payload = {
        "tool": "ps360-lint",
        "checks": report.check_ids,
        "selected": report.selected,
        "findings": [
            {
                "check": f.check_id,
                "path": f.rel,
                "line": f.line,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in report.findings
        ],
        "grandfathered": len(report.grandfathered),
        "stale_baseline": sorted(report.stale_baseline),
        "suppressions_honored": report.suppressions_honored,
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(report: Report) -> str:
    checks = all_checks()
    rule_ids = report.check_ids
    rule_index = {cid: i for i, cid in enumerate(rule_ids)}
    rules = [
        {
            "id": cid,
            "shortDescription": {"text": checks[cid].description},
        }
        for cid in rule_ids
    ]
    results = []
    for f in report.findings:
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": f.rel},
            }
        }
        if f.line is not None:
            location["physicalLocation"]["region"] = {"startLine": f.line}
        results.append(
            {
                "ruleId": f.check_id,
                "ruleIndex": rule_index[f.check_id],
                "level": "error",
                "message": {"text": f.message},
                "locations": [location],
                "fingerprints": {"ps360LintContent/v1": f.fingerprint},
            }
        )
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ps360-lint",
                        "informationUri":
                            "https://github.com/pstream360/pstream360",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(sarif, indent=2) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
