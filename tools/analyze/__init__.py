"""pstream360 static-analysis framework.

A small, project-specific analyzer: every repo invariant is a registered
check class with a stable ID, findings carry file/line locations, and the
engine layers inline suppressions and a committed baseline on top before
deciding the exit code. `tools/lint.py` is the CLI shim; `tools/analyze/cli.py`
holds the argument parsing; checks live in `tools/analyze/checks/`.

Public API (used by tools/lint.py and tests/analyze_test.py):

    from analyze import cli
    cli.main(["--repo", ".", "--format", "json"])

    from analyze.engine import run_analysis
    report = run_analysis(repo_root)          # full check set
"""

from __future__ import annotations

__version__ = "1.0.0"
