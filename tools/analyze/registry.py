"""Check registry: every invariant is a class with a stable ID.

A check yields Findings; it never looks at suppressions or the baseline —
the engine owns those layers. IDs are stable public API: they appear in
suppression comments, the baseline file, SARIF ruleIds, and ctest names
(`lint.<id>`), so renaming one is a breaking change.
"""

from __future__ import annotations

from typing import Iterable, Type

from .context import Finding, RepoContext

_REGISTRY: dict[str, Type["Check"]] = {}


class Check:
    """Base class. Subclasses set `id` and `description` and implement run()."""

    id: str = ""
    description: str = ""

    def run(self, ctx: RepoContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, rel: str, line: int | None, message: str) -> Finding:
        return Finding(check_id=self.id, rel=rel, line=line, message=message)


def register(cls: Type[Check]) -> Type[Check]:
    if not cls.id or not cls.description:
        raise ValueError(f"{cls.__name__} must set a stable id and description")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate check id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_checks() -> dict[str, Type[Check]]:
    # Import for side effect: each module registers its checks on import.
    from . import checks  # noqa: F401

    return dict(sorted(_REGISTRY.items()))
