"""Source model shared by every check: files, comment stripping, suppressions.

Line numbers are 1-based everywhere. Comment stripping preserves line
structure (comment bodies become spaces) so a match position in the
stripped text maps to the same line number as in the raw text.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import pathlib
import re

from . import config

# Inline suppression grammar. The justification after `--` is mandatory;
# `suppression-hygiene` reports any allow() without one.
#
#   // ps360-lint: allow(check-id) -- why this is safe here
#   // ps360-lint: allow(check-a, check-b) -- one justification for both
SUPPRESSION_RE = re.compile(
    r"//\s*ps360-lint:\s*allow\(([^)]*)\)\s*(?:--\s*(\S.*))?"
)


@dataclasses.dataclass
class Suppression:
    """One parsed `// ps360-lint: allow(...)` comment."""

    rel: str                      # repo-relative posix path
    line: int                     # 1-based line the comment sits on
    check_ids: tuple[str, ...]
    justification: str            # "" when missing (an error in itself)
    used_for: set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One violation. `line` of None means the finding is file-scoped."""

    check_id: str
    rel: str
    line: int | None
    message: str
    # Content fingerprint: stable across unrelated edits that shift line
    # numbers. Filled in by the engine (needs the file's line text).
    fingerprint: str = ""

    def location(self) -> str:
        return self.rel if self.line is None else f"{self.rel}:{self.line}"


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure.

    String literals are not parsed; none of the banned tokens appear inside
    string literals in this codebase (same simplification the original
    lint.py made, now centralized).
    """

    def _blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", _blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", _blank, text)


class SourceFile:
    """One on-disk source file with raw text, stripped text, suppressions."""

    def __init__(self, path: pathlib.Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.stripped = strip_comments(self.raw)
        self.stripped_lines = self.stripped.splitlines()
        self.suppressions = [
            Suppression(
                rel=rel,
                line=lineno,
                check_ids=tuple(
                    s.strip() for s in m.group(1).split(",") if s.strip()
                ),
                justification=(m.group(2) or "").strip(),
            )
            for lineno, line in enumerate(self.raw_lines, start=1)
            if (m := SUPPRESSION_RE.search(line))
        ]

    def line_of_offset(self, offset: int) -> int:
        """1-based line number of a character offset into the text."""
        return self.stripped.count("\n", 0, offset) + 1


class RepoContext:
    """Lazy, cached view of the repository the checks run against."""

    def __init__(self, repo: pathlib.Path) -> None:
        self.repo = repo.resolve()

    @functools.cache
    def source_files(self) -> tuple[SourceFile, ...]:
        files = []
        for d in config.SOURCE_DIRS:
            root = self.repo / d
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*")):
                if path.suffix not in config.SOURCE_SUFFIXES or not path.is_file():
                    continue
                rel = path.relative_to(self.repo).as_posix()
                if any(
                    rel == ex or rel.startswith(ex + "/")
                    for ex in config.EXCLUDE_PATHS
                ):
                    continue
                files.append(SourceFile(path, rel))
        return tuple(files)

    def sources(
        self,
        *,
        under: tuple[str, ...] | None = None,
        suffixes: tuple[str, ...] | None = None,
    ) -> list[SourceFile]:
        out = []
        for sf in self.source_files():
            if suffixes and not sf.rel.endswith(suffixes):
                continue
            # `under` entries are directories or single files: exact path
            # matches let config scope a discipline to one file (e.g. the
            # plan cache inside src/core).
            if under and not any(
                sf.rel == d or sf.rel.startswith(d + "/") for d in under
            ):
                continue
            out.append(sf)
        return out

    def all_suppressions(self) -> list[Suppression]:
        return [s for sf in self.source_files() for s in sf.suppressions]


def content_fingerprint(check_id: str, sf: SourceFile | None, finding: Finding,
                        ordinal: int) -> str:
    """Line-content hash so baselines survive line-number drift.

    File-scope findings hash the message instead (there is no line to pin
    to); `ordinal` disambiguates identical lines in one file.
    """
    if finding.line is None or sf is None:
        basis = finding.message
    else:
        idx = finding.line - 1
        basis = sf.raw_lines[idx].strip() if idx < len(sf.raw_lines) else ""
    digest = hashlib.sha1(basis.encode("utf-8")).hexdigest()[:12]
    return f"{check_id}:{finding.rel}:{digest}:{ordinal}"
