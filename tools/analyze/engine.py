"""Analysis engine: run checks, resolve suppressions, apply the baseline.

The engine always evaluates the *full* check set — a `--check` filter only
restricts which findings are reported. That keeps per-check ctest entries
honest (suppression-hygiene needs global knowledge of which allow()
comments matched) while staying cheap: every check is a regex pass over an
already-cached source model.

Suppression scope rules:
  * line-scoped finding: an allow() on the same line or the line directly
    above suppresses it;
  * file-scoped finding (no line): an allow() anywhere in that file
    suppresses it.
"""

from __future__ import annotations

import collections
import dataclasses
import pathlib

from . import baseline as baseline_mod
from .context import Finding, RepoContext, Suppression, content_fingerprint
from .registry import all_checks

DEFAULT_BASELINE = "tools/analyze/baseline.json"


@dataclasses.dataclass
class Report:
    repo: pathlib.Path
    check_ids: list[str]                 # every check that ran
    selected: list[str] | None           # reporting filter (None = all)
    findings: list[Finding]              # new findings, post-filter
    all_findings: list[Finding]          # new findings, pre-filter
    grandfathered: list[Finding]         # present, but in the baseline
    stale_baseline: set[str]             # baseline entries that no longer fire
    suppressions_honored: int

    @property
    def clean(self) -> bool:
        return not self.findings


def _suppression_for(
    finding: Finding, by_file: dict[str, list[Suppression]]
) -> Suppression | None:
    for supp in by_file.get(finding.rel, ()):
        if finding.check_id not in supp.check_ids:
            continue
        if finding.line is None or supp.line in (finding.line, finding.line - 1):
            return supp
    return None


def _hygiene_findings(
    suppressions: list[Suppression], valid_ids: set[str], check_id: str
) -> list[Finding]:
    findings = []
    for supp in suppressions:
        if not supp.check_ids:
            findings.append(Finding(
                check_id, supp.rel, supp.line,
                "allow() names no check id",
            ))
        if not supp.justification:
            findings.append(Finding(
                check_id, supp.rel, supp.line,
                "suppression is missing its justification: write "
                "'// ps360-lint: allow(<check-id>) -- <why this is safe>'",
            ))
        for cid in supp.check_ids:
            if cid not in valid_ids:
                findings.append(Finding(
                    check_id, supp.rel, supp.line,
                    f"allow({cid}) names an unknown check id "
                    f"(see `tools/lint.py --list-checks`)",
                ))
            elif cid not in supp.used_for:
                findings.append(Finding(
                    check_id, supp.rel, supp.line,
                    f"unused suppression: allow({cid}) matched no finding — "
                    "delete it (stale suppressions hide future violations)",
                ))
    return findings


def run_analysis(
    repo: pathlib.Path,
    selected: list[str] | None = None,
    baseline_path: pathlib.Path | None = None,
) -> Report:
    repo = repo.resolve()
    ctx = RepoContext(repo)
    checks = {cid: cls() for cid, cls in all_checks().items()}

    if selected:
        unknown = sorted(set(selected) - set(checks))
        if unknown:
            raise ValueError(
                f"unknown check id(s): {', '.join(unknown)} "
                "(see --list-checks)"
            )

    raw: list[Finding] = []
    for check in checks.values():
        if getattr(check, "engine_managed", False):
            continue
        raw.extend(check.run(ctx))

    # Resolve suppressions, tracking which allow() entries earned their keep.
    suppressions = ctx.all_suppressions()
    by_file: dict[str, list[Suppression]] = collections.defaultdict(list)
    for supp in suppressions:
        by_file[supp.rel].append(supp)
    kept: list[Finding] = []
    honored = 0
    for finding in raw:
        supp = _suppression_for(finding, by_file)
        if supp is not None and supp.justification:
            supp.used_for.add(finding.check_id)
            honored += 1
        else:
            # A justification-less allow() suppresses nothing: the finding
            # stays AND suppression-hygiene flags the comment.
            kept.append(finding)

    hygiene_id = "suppression-hygiene"
    kept.extend(_hygiene_findings(suppressions, set(checks), hygiene_id))

    # Content fingerprints (ordinal disambiguates identical lines).
    sf_by_rel = {sf.rel: sf for sf in ctx.source_files()}
    seen: collections.Counter[str] = collections.Counter()
    fingerprinted: list[Finding] = []
    for finding in sorted(kept, key=lambda f: (f.rel, f.line or 0, f.check_id)):
        sf = sf_by_rel.get(finding.rel)
        key = content_fingerprint(finding.check_id, sf, finding, 0)
        fp = content_fingerprint(finding.check_id, sf, finding, seen[key])
        seen[key] += 1
        fingerprinted.append(dataclasses.replace(finding, fingerprint=fp))

    known = baseline_mod.load(
        baseline_path if baseline_path is not None else repo / DEFAULT_BASELINE
    )
    new = [f for f in fingerprinted if f.fingerprint not in known]
    grandfathered = [f for f in fingerprinted if f.fingerprint in known]
    stale = known - {f.fingerprint for f in fingerprinted}

    reported = (
        new if selected is None
        else [f for f in new if f.check_id in selected]
    )
    return Report(
        repo=repo,
        check_ids=sorted(checks),
        selected=sorted(selected) if selected else None,
        findings=reported,
        all_findings=new,
        grandfathered=grandfathered,
        stale_baseline=stale,
        suppressions_honored=honored,
    )
