"""Command-line front end for the analyzer (tools/lint.py is the shim).

Exit codes: 0 clean, 1 findings outside the baseline, 2 usage/internal
error. `--check` may repeat; each per-check ctest entry (`lint.<id>`) is
one such invocation, so local runs, ctest, and CI all share this path.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import baseline as baseline_mod
from .engine import DEFAULT_BASELINE, run_analysis
from .output import RENDERERS
from .registry import all_checks


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lint.py",
        description="pstream360 repo-invariant static analyzer",
    )
    parser.add_argument("--repo", default=".", help="repository root")
    parser.add_argument(
        "--check",
        action="append",
        metavar="ID",
        help="run/report only this check id (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="print one check id per line and exit",
    )
    parser.add_argument(
        "--describe-checks",
        action="store_true",
        help="print 'id<TAB>description' per check and exit",
    )
    parser.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_checks or args.describe_checks:
        for cid, cls in all_checks().items():
            print(cid if args.list_checks else f"{cid}\t{cls.description}")
        return 0

    repo = pathlib.Path(args.repo)
    if not repo.is_dir():
        print(f"lint.py: not a directory: {repo}", file=sys.stderr)
        return 2
    baseline_path = (
        pathlib.Path(args.baseline) if args.baseline
        else repo.resolve() / DEFAULT_BASELINE
    )

    try:
        report = run_analysis(repo, args.check, baseline_path)
    except ValueError as err:
        print(f"lint.py: {err}", file=sys.stderr)
        return 2

    if args.update_baseline:
        fingerprints = {f.fingerprint for f in report.all_findings} | {
            f.fingerprint for f in report.grandfathered
        }
        fingerprints -= report.stale_baseline
        baseline_mod.save(baseline_path, fingerprints)
        print(
            f"lint.py: baseline updated with {len(fingerprints)} "
            f"fingerprint(s) -> {baseline_path}"
        )
        return 0

    text = RENDERERS[args.format](report)
    if args.out:
        pathlib.Path(args.out).write_text(text, encoding="utf-8")
        # Keep the console actionable even when the report goes to a file.
        print(
            f"lint.py: {len(report.findings)} finding(s) -> {args.out}"
        )
    else:
        sys.stdout.write(text)
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
