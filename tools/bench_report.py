#!/usr/bin/env python3
"""Summarize google-benchmark JSON output (the tracked perf trajectories).

Usage:
  tools/bench_report.py BENCH_mpc.json [BENCH_fleet.json ...] \\
      [--baseline bench/results/BENCH_mpc_before.json]

Accepts any number of results files and prints one table per file, one row
per benchmark with its real time. When a baseline file is given, rows whose
names appear in the baseline also get the baseline time and the speedup
(baseline / current); files with no overlap simply omit those columns. CI
runs this after `bench_micro_solver --benchmark_out=BENCH_mpc.json` and
`bench_fleet --benchmark_out=BENCH_fleet.json` so every PR records how the
solver and the fleet engine moved. Exit code is 1 if any report cannot be
produced (missing or corrupt file) and 0 otherwise; regressions are
reported, not failed, since shared CI runners are too noisy for a hard gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# Factors to nanoseconds, keyed by google-benchmark's time_unit field.
_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path: pathlib.Path) -> dict[str, float]:
    """Map benchmark name -> real time in ns (iteration runs only)."""
    with path.open(encoding="utf-8") as fh:
        data = json.load(fh)
    result: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates of --benchmark_repetitions
        unit = _TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        result[bench["name"]] = float(bench["real_time"]) * unit
    return result


def fmt_time(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} us"
    return f"{ns:.0f} ns"


def print_table(title: str, current: dict[str, float],
                baseline: dict[str, float]) -> None:
    # Only show baseline columns when this file has rows the baseline knows.
    compare = baseline if any(n in baseline for n in current) else {}
    name_w = max(len(n) for n in current)
    header = f"{'benchmark':<{name_w}}  {'time':>10}"
    if compare:
        header += f"  {'baseline':>10}  {'speedup':>8}"
    print(f"== {title}")
    print(header)
    print("-" * len(header))
    for name, time_ns in current.items():
        row = f"{name:<{name_w}}  {fmt_time(time_ns):>10}"
        if compare:
            base_ns = compare.get(name)
            if base_ns is None:
                row += f"  {'-':>10}  {'-':>8}"
            else:
                row += f"  {fmt_time(base_ns):>10}  {base_ns / time_ns:>7.2f}x"
        print(row)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="google-benchmark JSON output file(s)")
    parser.add_argument(
        "--baseline",
        help="earlier google-benchmark JSON to compare against (speedup = baseline/current)",
    )
    args = parser.parse_args()

    baseline: dict[str, float] = {}
    if args.baseline:
        try:
            baseline = load_benchmarks(pathlib.Path(args.baseline))
        except (OSError, ValueError, KeyError) as err:
            print(f"bench_report.py: cannot read {args.baseline}: {err}", file=sys.stderr)
            return 1

    status = 0
    for index, results in enumerate(args.results):
        try:
            current = load_benchmarks(pathlib.Path(results))
        except (OSError, ValueError, KeyError) as err:
            print(f"bench_report.py: cannot read {results}: {err}", file=sys.stderr)
            status = 1
            continue
        if not current:
            print(f"bench_report.py: no benchmarks in {results}", file=sys.stderr)
            status = 1
            continue
        if index > 0:
            print()
        print_table(results, current, baseline)
    return status


if __name__ == "__main__":
    sys.exit(main())
