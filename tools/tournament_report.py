#!/usr/bin/env python3
"""Render a tournament report (sim::TournamentReport JSON) for humans.

Input is the JSON file written by the tournament driver:

    ./build/examples/tournament --json tournament.json

Outputs:
  * (default) the ranked standings table: final rank, scheme, borda score,
    mean energy/QoE/stall, and the three per-metric mean ranks.
  * --cells: additionally one row per grid cell (scheme x trace x fault
    profile x fleet size) so a scheme's standing can be traced back to the
    environments that produced it.
  * --csv OUT.csv: the standings as CSV for spreadsheets/plots.

The report is deterministic (same seed, any thread/shard count -> identical
bytes), so diffing two JSON files is a meaningful regression check.
"""

from __future__ import annotations

import argparse
import csv
import json
import pathlib
import sys


def load_report(path: pathlib.Path) -> dict:
    with path.open() as fh:
        report = json.load(fh)
    for key in ("seed", "standings", "cells"):
        if key not in report:
            raise SystemExit(f"{path}: not a tournament report (missing '{key}')")
    return report


def print_standings(report: dict) -> None:
    standings = report["standings"]
    schemes = len(standings)
    groups = len(report["cells"]) // schemes if schemes else 0
    print(f"tournament seed {report['seed']}: "
          f"{schemes} schemes x {groups} environment groups")
    print()
    header = (f"{'rank':>4}  {'scheme':<12} {'borda':>7} | "
              f"{'mJ/user':>8} {'QoE':>6} {'stall':>6} | "
              f"{'rE':>6} {'rQ':>5} {'rS':>5}")
    print(header)
    print("-" * len(header))
    for s in standings:
        print(f"{s['rank']:>4}  {s['scheme']:<12} {s['borda']:>7.2f} | "
              f"{s['mean_energy_mj']:>8.0f} {s['mean_qoe']:>6.1f} "
              f"{s['mean_stall_ratio'] * 100:>5.2f}% | "
              f"{s['energy_rank']:>6.2f} {s['qoe_rank']:>5.2f} "
              f"{s['stall_rank']:>5.2f}")
    print()
    print("rE/rQ/rS: mean per-group rank on energy / QoE / stall (1 = best); "
          "borda = rE + rQ + rS.")


def print_cells(report: dict) -> None:
    print()
    header = (f"{'scheme':<12} {'trace':>5} {'faults':<8} {'fleet':>5} | "
              f"{'mJ/user':>8} {'QoE':>6} {'stall':>6} {'util':>5}")
    print(header)
    print("-" * len(header))
    for c in report["cells"]:
        m = c["metrics"]
        print(f"{c['scheme']:<12} {c['trace']:>5} {c['faults']:<8} "
              f"{c['sessions']:>5} | {m['energy_per_session_mj']:>8.0f} "
              f"{m['mean_qoe']:>6.1f} {m['stall_ratio'] * 100:>5.2f}% "
              f"{m['link_utilization'] * 100:>4.0f}%")


def write_csv(report: dict, path: pathlib.Path) -> None:
    fields = ["rank", "scheme", "borda", "energy_rank", "qoe_rank",
              "stall_rank", "mean_energy_mj", "mean_qoe", "mean_stall_ratio"]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for s in report["standings"]:
            writer.writerow({k: s[k] for k in fields})
    print(f"wrote {path}")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=pathlib.Path,
                        help="JSON file from ./build/examples/tournament --json")
    parser.add_argument("--cells", action="store_true",
                        help="also print one row per grid cell")
    parser.add_argument("--csv", type=pathlib.Path, metavar="OUT.csv",
                        help="write the standings as CSV")
    args = parser.parse_args(argv)

    report = load_report(args.report)
    print_standings(report)
    if args.cells:
        print_cells(report)
    if args.csv:
        write_csv(report, args.csv)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
