#!/usr/bin/env python3
"""Hard-gate headline benchmark metrics against committed baselines.

Usage:
  tools/bench_guard.py BENCH_mpc.json=bench/results/BENCH_mpc.json \\
      BENCH_fleet.json=bench/results/BENCH_fleet.json [--tolerance 4.0]

Each positional argument is a CURRENT=BASELINE pair of google-benchmark JSON
files. Benchmarks are matched by name; a run fails (exit 1) when any matched
benchmark's real time exceeds baseline * tolerance. Unlike bench_report.py —
which narrates the perf trajectory without judging it — this is a gate, so
the tolerance is deliberately generous (default 4x): shared CI runners jitter
by integer factors, and the gate exists to catch order-of-magnitude
accidents (a debug-build binary, an O(n^2) slip in the solver hot loop, an
event queue that stopped recycling), not single-digit-percent drift.

Benchmarks present on only one side are reported and ignored: new benchmarks
should not fail the gate, and retired ones should not block until the
baseline is regenerated. A baseline whose names ALL miss the current run
fails, though — that means the wrong file pair was wired up.

--require NAME (repeatable) upgrades silence to failure for specific names:
the run fails unless NAME was matched — present in both the current run and
the baseline — in at least one pair. Use it for benchmarks the gate must
actually cover — without it, a renamed or silently dropped benchmark
degrades into an ignored "new"/"retired" note and the gate stops gating it.

--require-faster FAST=SLOW (repeatable) asserts an ordering *within the
current run*: the run fails unless both names are present in the current
side of some pair and real_time(FAST) < real_time(SLOW). This gates
speedups that must hold on the runner itself regardless of baseline drift —
e.g. the sharded fleet engine beating the serial engine at equal fleet size
(BM_FleetRun/10000/0 vs BM_FleetRun/10000/1). Both rows come from the same
process on the same machine, so no cross-run tolerance applies.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from bench_report import fmt_time, load_benchmarks


def guard(current_path: pathlib.Path, baseline_path: pathlib.Path,
          tolerance: float, matched_out: set[str],
          current_out: dict[str, float]) -> int:
    current = load_benchmarks(current_path)
    baseline = load_benchmarks(baseline_path)
    matched = sorted(set(current) & set(baseline))
    matched_out.update(matched)
    current_out.update(current)
    if not matched:
        print(f"bench_guard.py: {current_path} and {baseline_path} share no "
              f"benchmark names; wrong pair?", file=sys.stderr)
        return 1

    status = 0
    print(f"== {current_path} vs {baseline_path} (tolerance {tolerance:g}x)")
    for name in matched:
        ratio = current[name] / baseline[name]
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        if verdict != "ok":
            status = 1
        print(f"  {verdict:>10}  {name}: {fmt_time(current[name])} vs "
              f"baseline {fmt_time(baseline[name])} ({ratio:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {'new':>10}  {name}: {fmt_time(current[name])} "
              f"(not in baseline; regenerate to start tracking)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {'retired':>10}  {name}: in baseline only")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pairs", nargs="+", metavar="CURRENT=BASELINE",
                        help="google-benchmark JSON pair to gate")
    parser.add_argument("--tolerance", type=float, default=4.0,
                        help="max allowed current/baseline time ratio "
                             "(default: %(default)s)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless NAME is matched in at least one "
                             "pair (repeatable)")
    parser.add_argument("--require-faster", action="append", default=[],
                        metavar="FAST=SLOW",
                        help="fail unless real_time(FAST) < real_time(SLOW) "
                             "in the current run (repeatable)")
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0")

    status = 0
    matched: set[str] = set()
    current_times: dict[str, float] = {}
    for pair in args.pairs:
        head, sep, tail = pair.partition("=")
        if not sep or not head or not tail:
            parser.error(f"expected CURRENT=BASELINE, got '{pair}'")
        try:
            status |= guard(pathlib.Path(head), pathlib.Path(tail),
                            args.tolerance, matched, current_times)
        except (OSError, ValueError, KeyError) as err:
            print(f"bench_guard.py: cannot read pair '{pair}': {err}",
                  file=sys.stderr)
            status = 1
    for name in sorted(set(args.require) - matched):
        print(f"bench_guard.py: MISSING required benchmark '{name}' "
              f"(not matched in any pair)", file=sys.stderr)
        status = 1
    for ordering in args.require_faster:
        fast, sep, slow = ordering.partition("=")
        if not sep or not fast or not slow:
            parser.error(f"expected FAST=SLOW, got '{ordering}'")
        missing = [n for n in (fast, slow) if n not in current_times]
        if missing:
            print(f"bench_guard.py: MISSING benchmark(s) {missing} for "
                  f"ordering '{ordering}'", file=sys.stderr)
            status = 1
            continue
        if current_times[fast] < current_times[slow]:
            print(f"    faster ok  {fast}: {fmt_time(current_times[fast])} < "
                  f"{slow}: {fmt_time(current_times[slow])}")
        else:
            print(f"bench_guard.py: ORDERING VIOLATION: {fast} "
                  f"({fmt_time(current_times[fast])}) is not faster than "
                  f"{slow} ({fmt_time(current_times[slow])})",
                  file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
