#!/usr/bin/env python3
"""Line-coverage summary for pstream360, with no gcovr/lcov dependency.

Workflow (the CI `coverage` leg runs exactly this):

    cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DPS360_COVERAGE=ON
    cmake --build build-cov -j
    ctest --test-dir build-cov -j 2
    python3 tools/coverage_report.py --build-dir build-cov \
        --fail-under 80 --out coverage_summary.txt

The script walks the build tree for .gcda files, asks `gcov --json-format
--stdout` for per-line execution counts, folds the counts across translation
units (a line is covered if any TU executed it), and prints line coverage
per src/ module plus the repo total. With --fail-under it exits non-zero
when the total drops below the floor — the README records the committed
baseline next to the floor.

Only files under src/ count: tests, benches, examples, and system headers
are excluded, so the number means "how much of the library the test suite
exercises".
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import shutil
import subprocess
import sys


def find_gcov() -> str:
    for candidate in ("gcov", "llvm-cov"):
        if shutil.which(candidate):
            return candidate
    raise SystemExit("coverage_report.py: neither gcov nor llvm-cov in PATH")


def gcov_command(tool: str) -> list[str]:
    # llvm-cov speaks the gcov CLI through its `gcov` subcommand.
    return [tool, "gcov"] if tool == "llvm-cov" else [tool]


def collect(build_dir: pathlib.Path, repo: pathlib.Path,
            tool: str) -> dict[str, dict[int, int]]:
    """Map repo-relative source path -> {line: max count across TUs}."""
    gcda_files = sorted(build_dir.rglob("*.gcda"))
    if not gcda_files:
        raise SystemExit(
            f"coverage_report.py: no .gcda under {build_dir} — build with "
            "-DPS360_COVERAGE=ON and run the tests first")
    src_root = repo / "src"
    counts: dict[str, dict[int, int]] = collections.defaultdict(dict)
    for gcda in gcda_files:
        result = subprocess.run(
            gcov_command(tool) + ["--json-format", "--stdout", gcda.name],
            cwd=gcda.parent, capture_output=True, text=True)
        if result.returncode != 0:
            print(f"warning: gcov failed on {gcda}: {result.stderr.strip()}",
                  file=sys.stderr)
            continue
        # One JSON document per line of stdout (one per .gcno processed).
        for line in result.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            for entry in doc.get("files", []):
                path = pathlib.Path(entry["file"])
                if not path.is_absolute():
                    path = (gcda.parent / path).resolve()
                try:
                    rel = path.resolve().relative_to(src_root)
                except ValueError:
                    continue  # test/bench/system file
                key = (pathlib.Path("src") / rel).as_posix()
                file_counts = counts[key]
                for ln in entry.get("lines", []):
                    number = ln["line_number"]
                    file_counts[number] = max(
                        file_counts.get(number, 0), ln["count"])
    return counts


def summarize(counts: dict[str, dict[int, int]]) -> tuple[list[str], float]:
    per_module: dict[str, list[int]] = collections.defaultdict(lambda: [0, 0])
    total_covered = total_lines = 0
    for path, lines in sorted(counts.items()):
        module = path.split("/")[1] if path.count("/") >= 2 else "(root)"
        covered = sum(1 for c in lines.values() if c > 0)
        per_module[module][0] += covered
        per_module[module][1] += len(lines)
        total_covered += covered
        total_lines += len(lines)

    out = ["pstream360 line coverage (src/ only)", ""]
    out.append(f"{'module':12s} {'lines':>7s} {'covered':>8s} {'pct':>7s}")
    for module in sorted(per_module):
        covered, lines = per_module[module]
        pct = 100.0 * covered / lines if lines else 0.0
        out.append(f"{module:12s} {lines:7d} {covered:8d} {pct:6.1f}%")
    total_pct = 100.0 * total_covered / total_lines if total_lines else 0.0
    out.append("")
    out.append(f"{'TOTAL':12s} {total_lines:7d} {total_covered:8d} {total_pct:6.1f}%")
    return out, total_pct


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build-cov",
                        help="build tree configured with -DPS360_COVERAGE=ON")
    parser.add_argument("--repo", default=".", help="repository root")
    parser.add_argument("--out", default=None,
                        help="also write the summary to this file (CI artifact)")
    parser.add_argument("--fail-under", type=float, default=None,
                        help="exit 1 if total line coverage is below this percent")
    args = parser.parse_args()

    repo = pathlib.Path(args.repo).resolve()
    build_dir = pathlib.Path(args.build_dir).resolve()
    counts = collect(build_dir, repo, find_gcov())
    lines, total_pct = summarize(counts)

    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.out:
        pathlib.Path(args.out).write_text(report, encoding="utf-8")

    if args.fail_under is not None and total_pct < args.fail_under:
        print(f"coverage_report.py: total {total_pct:.1f}% is below the "
              f"--fail-under floor of {args.fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
