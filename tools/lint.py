#!/usr/bin/env python3
"""Repo-invariant lint for pstream360 — thin shim over tools/analyze/.

Every invariant is a registered check class with a stable ID (see
`--list-checks`); findings honor inline suppressions
(`// ps360-lint: allow(<check-id>) -- <justification>`) and the committed
baseline (tools/analyze/baseline.json). ctest runs one `lint.<id>` entry
per check; CI additionally uploads the SARIF report:

  python3 tools/lint.py --repo . --format sarif --out lint.sarif

Exit code 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from analyze import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
