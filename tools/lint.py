#!/usr/bin/env python3
"""Repo-invariant lint for pstream360, run as the `lint.invariants` ctest.

Checked invariants:
  1. Header hygiene: every .h under src/ and bench/ starts include guards with
     `#pragma once`.
  2. RNG policy: all randomness flows through ps360::util::Rng. `rand()`,
     `srand(`, `std::random_device`, and `std::mt19937` are banned outside
     src/util/rng.* so every run stays bit-reproducible.
  3. Unit-safe public headers: the migrated modules (geometry angles/viewport,
     power energy/device_models, qoe qoe_model) must not declare raw
     `double foo_deg` / `double foo_rad` parameters — angles crossing those
     APIs are util::Degrees / util::Radians strong types.
  4. Contract checks: every .cpp in the migrated modules validates inputs with
     PS360_CHECK / PS360_ASSERT (util/check.h).
  5. `using namespace std;` is banned everywhere.
  6. Deterministic subsystems: src/fleet is a deterministic discrete-event
     engine and src/obs observes replayable simulations, so wall-clock time
     (`std::chrono::system_clock`, `steady_clock::now`) and non-reproducible
     entropy are banned in both, and every source there starts with a `//`
     header comment stating its contract. A trace record stamped with real
     time would make identical runs produce different artifacts.

Exit code 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]

RNG_EXEMPT = ("src/util/rng.h", "src/util/rng.cpp")
RNG_BANNED = [
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand("),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::mt19937"), "std::mt19937"),
]

UNIT_SAFE_HEADERS = [
    "src/geometry/angles.h",
    "src/geometry/viewport.h",
    "src/power/energy.h",
    "src/power/device_models.h",
    "src/qoe/qoe_model.h",
]

# `double lon_deg,` / `double a_rad)` — a raw-double angle parameter.
RAW_ANGLE_PARAM = re.compile(r"\bdouble\s+\w*_(?:deg|rad)\s*[,)=]")

CONTRACT_MODULES = ["src/geometry", "src/power", "src/qoe", "src/fleet",
                    "src/obs"]

# Deterministic subsystems (fleet engine, observability layer) must be
# replayable: no wall-clock reads, no OS entropy. Individual files elsewhere
# that feed those subsystems (the seeded fault-injection layer) are held to
# the same bar.
DETERMINISTIC_DIRS = ["src/fleet", "src/obs"]
DETERMINISTIC_FILES = [
    "src/trace/fault_schedule.h",
    "src/trace/fault_schedule.cpp",
]
FLEET_BANNED = [
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (re.compile(r"std::chrono::high_resolution_clock"),
     "std::chrono::high_resolution_clock"),
]

USING_NAMESPACE_STD = re.compile(r"^\s*using\s+namespace\s+std\s*;")


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments (string literals are not parsed; none of
    the banned tokens appear inside strings in this codebase)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def iter_sources(repo: pathlib.Path, suffixes: tuple[str, ...]):
    for d in SOURCE_DIRS:
        root = repo / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".", help="repository root")
    args = parser.parse_args()
    repo = pathlib.Path(args.repo).resolve()

    violations: list[str] = []

    def rel(path: pathlib.Path) -> str:
        return path.relative_to(repo).as_posix()

    # 1. #pragma once in every header.
    for path in iter_sources(repo, (".h",)):
        text = path.read_text(encoding="utf-8")
        if "#pragma once" not in text:
            violations.append(f"{rel(path)}: header is missing '#pragma once'")

    # 2. RNG policy + 5. using namespace std.
    for path in iter_sources(repo, (".h", ".cpp")):
        rp = rel(path)
        text = strip_comments(path.read_text(encoding="utf-8"))
        if rp not in RNG_EXEMPT:
            for pattern, label in RNG_BANNED:
                if pattern.search(text):
                    violations.append(
                        f"{rp}: uses {label}; all randomness must go through "
                        "ps360::util::Rng (src/util/rng.h)"
                    )
        for lineno, line in enumerate(text.splitlines(), start=1):
            if USING_NAMESPACE_STD.search(line):
                violations.append(f"{rp}:{lineno}: 'using namespace std;' is banned")

    # 3. Unit-safe public headers.
    for header in UNIT_SAFE_HEADERS:
        path = repo / header
        if not path.is_file():
            violations.append(f"{header}: unit-safe header is missing")
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(text.splitlines(), start=1):
            if RAW_ANGLE_PARAM.search(line):
                violations.append(
                    f"{header}:{lineno}: raw 'double ..._deg/_rad' parameter in a "
                    "unit-safe public header; use util::Degrees / util::Radians"
                )

    # 6. Deterministic subsystems: clock bans + leading contract comment.
    def check_deterministic(path: pathlib.Path, scope: str) -> None:
        raw = path.read_text(encoding="utf-8")
        text = strip_comments(raw)
        for pattern, label in FLEET_BANNED:
            if pattern.search(text):
                violations.append(
                    f"{rel(path)}: uses {label}; {scope} is replayable "
                    "— simulated time only, never wall-clock time"
                )
        if not raw.lstrip().startswith("//"):
            violations.append(
                f"{rel(path)}: sources in {scope} must open with a '//' "
                "header comment stating the file's contract"
            )

    for det_dir in DETERMINISTIC_DIRS:
        for path in sorted((repo / det_dir).glob("*")):
            if path.suffix in (".h", ".cpp"):
                check_deterministic(path, det_dir)
    for det_file in DETERMINISTIC_FILES:
        path = repo / det_file
        if not path.is_file():
            violations.append(f"{det_file}: deterministic source is missing")
            continue
        check_deterministic(path, det_file)

    # 4. Contract checks in migrated modules (plus the deterministic
    #    stand-alone sources, which carry the same validation bar).
    contract_sources = [
        path for module in CONTRACT_MODULES
        for path in sorted((repo / module).glob("*.cpp"))
    ]
    contract_sources += [
        repo / f for f in DETERMINISTIC_FILES
        if f.endswith(".cpp") and (repo / f).is_file()
    ]
    for path in contract_sources:
        text = path.read_text(encoding="utf-8")
        if "PS360_CHECK" not in text and "PS360_ASSERT" not in text:
            violations.append(
                f"{rel(path)}: no PS360_CHECK/PS360_ASSERT; public API entries "
                "in migrated modules must validate their inputs (util/check.h)"
            )

    if violations:
        print(f"lint.py: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print("lint.py: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
