#!/usr/bin/env python3
"""Render a pstream360 event trace (obs::EventTracer JSONL) for humans.

Input is the JSON-lines file written by EventTracer::export_jsonl — one
record per line with fields t (simulated seconds), session, kind, a, v0, v1
(see src/obs/tracer.h for the per-kind payload meanings). Produce it with,
e.g.:

    ./build/examples/fleet_contention --trace fleet_trace.jsonl

Outputs:
  * (default) a terminal summary: record counts by kind, per-session
    download/stall totals, MPC strict-vs-relaxed split, timeline span.
  * --chrome OUT.json: the Chrome trace-event format (open in
    chrome://tracing or https://ui.perfetto.dev). Downloads and stalls
    become duration events on one track per session; everything else is an
    instant event.
  * --jsonl OUT.jsonl: re-emit the parsed records (optionally filtered with
    --session / --kind) as normalized JSONL.

Timestamps are simulated seconds; the Chrome export maps them to
microseconds so the tracing UI's zoom levels behave.
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import sys

# Kind names, mirroring obs::TraceEventKind (src/obs/tracer.cpp).
KINDS = [
    "segment_planned",
    "download_start",
    "download_complete",
    "stall_begin",
    "stall_end",
    "mpc_strict",
    "mpc_relaxed",
    "ptile_choice",
    "link_rate_change",
]

# The fleet engine labels link-wide records with session 0xFFFFFFFF.
LINK_SESSION = 0xFFFFFFFF


def read_records(path: pathlib.Path) -> list[dict]:
    records = []
    with path.open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: not JSON: {err}")
            for field in ("t", "session", "kind", "a", "v0", "v1"):
                if field not in record:
                    raise SystemExit(f"{path}:{lineno}: missing field '{field}'")
            if record["kind"] not in KINDS:
                raise SystemExit(
                    f"{path}:{lineno}: unknown kind '{record['kind']}'")
            records.append(record)
    return records


def session_label(session: int) -> str:
    return "link" if session == LINK_SESSION else f"session {session}"


def print_summary(records: list[dict]) -> None:
    if not records:
        print("empty trace")
        return
    t_min = min(r["t"] for r in records)
    t_max = max(r["t"] for r in records)
    by_kind = collections.Counter(r["kind"] for r in records)
    sessions = sorted({r["session"] for r in records if r["session"] != LINK_SESSION})

    print(f"{len(records)} records, {len(sessions)} session(s), "
          f"t = [{t_min:.3f}, {t_max:.3f}] s")
    print("\nrecords by kind:")
    for kind in KINDS:
        if by_kind[kind]:
            print(f"  {kind:18s} {by_kind[kind]:6d}")

    strict = by_kind["mpc_strict"]
    relaxed = by_kind["mpc_relaxed"]
    if strict + relaxed:
        print(f"\nMPC solves: {strict + relaxed} "
              f"({strict} strict, {relaxed} relaxed fallback)")

    rows = []
    for session in sessions:
        mine = [r for r in records if r["session"] == session]
        downloads = [r for r in mine if r["kind"] == "download_complete"]
        stall_s = sum(r["v0"] for r in mine if r["kind"] == "stall_end")
        download_s = sum(r["v0"] for r in downloads)
        rows.append((session, len(downloads), download_s, stall_s))
    if rows:
        print("\n%9s %9s %12s %9s" % ("session", "segments", "download s", "stall s"))
        for session, segments, download_s, stall_s in rows:
            print("%9d %9d %12.2f %9.2f" % (session, segments, download_s, stall_s))

    rate_changes = [r for r in records if r["kind"] == "link_rate_change"]
    if rate_changes:
        mbps = [r["v0"] * 8.0 / 1e6 for r in rate_changes]
        print(f"\nlink: {len(rate_changes)} rate changes, "
              f"{min(mbps):.1f}-{max(mbps):.1f} Mbps")


def chrome_events(records: list[dict]) -> list[dict]:
    """Map records to Chrome trace events: one tid per session, duration
    events for downloads (paired by (session, segment)) and stalls."""
    events: list[dict] = []
    open_downloads: dict[tuple[int, int], dict] = {}
    open_stalls: dict[tuple[int, int], dict] = {}

    def us(t: float) -> float:
        return t * 1e6

    def base(record: dict) -> dict:
        session = record["session"]
        return {"pid": 1, "tid": session if session != LINK_SESSION else -1}

    for record in records:
        kind = record["kind"]
        key = (record["session"], record["a"])
        if kind == "download_start":
            open_downloads[key] = record
        elif kind == "download_complete":
            start = open_downloads.pop(key, None)
            # Single-session traces carry no download_start; reconstruct the
            # span from the completion's download_s payload.
            t0 = start["t"] if start else record["t"] - record["v0"]
            events.append(base(record) | {
                "name": f"download seg {record['a']}", "cat": "download",
                "ph": "X", "ts": us(t0), "dur": us(record["t"] - t0),
                "args": {"segment": record["a"], "download_s": record["v0"],
                         "stall_s": record["v1"]},
            })
        elif kind == "stall_begin":
            open_stalls[key] = record
        elif kind == "stall_end":
            begin = open_stalls.pop(key, None)
            t0 = begin["t"] if begin else record["t"] - record["v0"]
            events.append(base(record) | {
                "name": f"stall seg {record['a']}", "cat": "stall",
                "ph": "X", "ts": us(t0), "dur": us(record["t"] - t0),
                "args": {"segment": record["a"], "stall_s": record["v0"]},
            })
        else:
            events.append(base(record) | {
                "name": kind, "cat": kind, "ph": "i", "s": "t",
                "ts": us(record["t"]),
                "args": {"a": record["a"], "v0": record["v0"],
                         "v1": record["v1"]},
            })

    for session in sorted({r["session"] for r in records}):
        tid = session if session != LINK_SESSION else -1
        events.append({"pid": 1, "tid": tid, "ph": "M",
                       "name": "thread_name",
                       "args": {"name": session_label(session)}})
    return events


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="JSONL trace from EventTracer::export_jsonl")
    parser.add_argument("--chrome", metavar="OUT",
                        help="write the Chrome trace-event format here")
    parser.add_argument("--jsonl", metavar="OUT",
                        help="re-emit (filtered) records as JSONL here")
    parser.add_argument("--session", type=int, default=None,
                        help="restrict outputs to one session id")
    parser.add_argument("--kind", choices=KINDS, default=None,
                        help="restrict outputs to one record kind")
    args = parser.parse_args()

    records = read_records(pathlib.Path(args.trace))
    if args.session is not None:
        records = [r for r in records if r["session"] == args.session]
    if args.kind is not None:
        records = [r for r in records if r["kind"] == args.kind]

    print_summary(records)

    if args.chrome:
        payload = {"traceEvents": chrome_events(records),
                   "displayTimeUnit": "ms"}
        pathlib.Path(args.chrome).write_text(
            json.dumps(payload, separators=(",", ":")) + "\n", encoding="utf-8")
        print(f"\nwrote Chrome trace: {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as out:
            for record in records:
                out.write(json.dumps(record, separators=(",", ":")) + "\n")
        print(f"wrote JSONL: {args.jsonl} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        sys.exit(0)
